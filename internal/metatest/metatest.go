// Package metatest is a metamorphic test harness for the synthesis
// flow: instead of pinning exact outputs (which shift whenever a
// heuristic is tuned), it checks relations that must hold for every
// (benchmark, method) combination no matter how the heuristics evolve:
//
//  1. Care-set equivalence — the synthesized implementation agrees with
//     the specification on every care minterm (DC assignment may only
//     spend don't-cares, never flip specified behavior).
//  2. Exact-bound bracketing — the implementation's exact error rate
//     lies within the specification's analytically derived
//     [ErrorRateMin, ErrorRateMax] interval (paper §5): no DC
//     assignment can escape the bounds.
//  3. Ranking-fraction extremes — fraction 0 is a no-op (nothing
//     assigned, function unchanged) and fraction 1 leaves no
//     reliability-rankable DC unassigned.
//  4. Complexity-threshold monotonicity — raising the LC^f threshold
//     never assigns fewer DC minterms (the paper's Fig. 7 predicate is
//     "assign iff LC^f < threshold", so the assigned set grows with the
//     threshold).
//  5. Parallel ≡ sequential — every analysis and synthesis kernel that
//     fans per-output work through internal/par produces bit-identical
//     results (exact float equality, identical assignments, identical
//     netlist metrics) at every worker count. Parallelism is an
//     execution knob, never an answer knob.
//  6. Kernel ≡ scalar — every word-parallel bitset kernel
//     (internal/bitset SWAR paths behind exact counts, error rates,
//     border counts, C^f/LC^f, and the assignment passes) reproduces
//     its scalar oracle bit for bit: identical integer counts, exact
//     float equality, identical assignments including ranking weights.
//     Like parallelism, the kernel switch is an execution knob, never
//     an answer knob.
//  7. Fused ≡ unfused — the one-pass fused neighbor census
//     (internal/census over bitset.Census) serves every quantity the
//     independent per-metric scans compute — exact pair counts and
//     bounds, border counts, C^f and the LC^f fold, the Poisson border
//     estimate, error rates, and both assignment passes — bit for bit
//     against the same scalar oracle property 6 pins the kernels to:
//     identical integers, exact float equality (==), identical
//     assignments. The census is a third lane over the same answers,
//     never a different answer.
//  8. Windowed ⊆ exhaustive don't-cares — for every node of a
//     k-feasible network, the per-node spec computed by the windowed
//     SAT engine (internal/network LocalSpecWindowedSAT) at any window
//     depth marks a subset of the don't-cares the exhaustive
//     whole-network simulation (LocalSpec) marks, never flips a care
//     phase, and at full window depth reproduces the exhaustive spec
//     exactly. The window is a soundness-preserving restriction, never
//     a different answer.
//
// The harness is a plain library (returning errors, not calling
// testing.T) so the same checks can back tests, fuzzing, and one-off
// audits. internal/metatest's own test file sweeps every
// internal/benchmarks circuit against every assignment method.
package metatest

import (
	"context"
	"fmt"

	"relsyn/internal/census"
	"relsyn/internal/complexity"
	"relsyn/internal/core"
	"relsyn/internal/estimate"
	"relsyn/internal/network"
	"relsyn/internal/par"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

// Method is one named don't-care assignment strategy under test. Apply
// returns the (partially) bound function to hand to synthesis; it must
// not mutate its input.
type Method struct {
	Name  string
	Apply func(f *tt.Function) (*tt.Function, error)
}

// Methods returns the assignment strategies the sweep covers: the
// conventional baseline plus each of the paper's reliability-driven
// algorithms at a representative operating point.
func Methods() []Method {
	return []Method{
		{Name: "none", Apply: func(f *tt.Function) (*tt.Function, error) {
			return f.Clone(), nil
		}},
		{Name: "rank-0.5", Apply: func(f *tt.Function) (*tt.Function, error) {
			res, err := core.Ranking(f, 0.5, core.Options{})
			if err != nil {
				return nil, err
			}
			return res.Func, nil
		}},
		{Name: "lcf-0.55", Apply: func(f *tt.Function) (*tt.Function, error) {
			res, err := core.LCF(f, 0.55, core.Options{})
			if err != nil {
				return nil, err
			}
			return res.Func, nil
		}},
		{Name: "complete", Apply: func(f *tt.Function) (*tt.Function, error) {
			return core.Complete(f).Func, nil
		}},
	}
}

// Synthesize runs the full conventional flow on f (espresso, factoring,
// AIG optimization, mapping) and returns the completely specified
// function the netlist computes.
func Synthesize(f *tt.Function) (*tt.Function, error) {
	res, err := synth.Synthesize(f, synth.Options{})
	if err != nil {
		return nil, err
	}
	return res.Impl, nil
}

// CheckCareSet verifies property 1: impl matches spec on every care
// minterm of every output (combinational equivalence restricted to the
// care set; the DCs are the only freedom synthesis has).
func CheckCareSet(spec, impl *tt.Function) error {
	if spec.NumIn != impl.NumIn || spec.NumOut() != impl.NumOut() {
		return fmt.Errorf("dimension mismatch: spec %d/%d vs impl %d/%d",
			spec.NumIn, spec.NumOut(), impl.NumIn, impl.NumOut())
	}
	size := spec.Size()
	for o := 0; o < spec.NumOut(); o++ {
		for m := 0; m < size; m++ {
			want := spec.Phase(o, m)
			if want == tt.DC {
				continue
			}
			if got := impl.Phase(o, m); got != want {
				return fmt.Errorf("output %d minterm %d: spec %v, impl %v",
					o, m, want, got)
			}
		}
	}
	return nil
}

// boundsEps absorbs float summation order differences between the bound
// and error-rate computations; the quantities themselves are exact
// rationals over n·2^n events.
const boundsEps = 1e-9

// CheckErrorRateBounds verifies property 2: the exact error rate of
// impl against spec lies within spec's [min, max] achievable interval.
func CheckErrorRateBounds(spec, impl *tt.Function) error {
	lo, hi, err := reliability.BoundsMean(spec)
	if err != nil {
		return err
	}
	er, err := reliability.ErrorRateMean(spec, impl)
	if err != nil {
		return err
	}
	if er < lo-boundsEps || er > hi+boundsEps {
		return fmt.Errorf("error rate %.12f outside exact bounds [%.12f, %.12f]", er, lo, hi)
	}
	return nil
}

// CheckRankingExtremes verifies property 3 on spec: fraction 0 assigns
// nothing and returns an identical function; fraction 1 assigns every
// rankable DC minterm (RankableCounts is the per-output census of DCs
// with at least one specified neighbor — the only ones ranking may
// bind).
func CheckRankingExtremes(spec *tt.Function) error {
	zero, err := core.Ranking(spec, 0, core.Options{})
	if err != nil {
		return err
	}
	if len(zero.Assigned) != 0 {
		return fmt.Errorf("fraction=0 assigned %d minterms, want 0", len(zero.Assigned))
	}
	if !zero.Func.Equal(spec) {
		return fmt.Errorf("fraction=0 modified the function")
	}

	one, err := core.Ranking(spec, 1, core.Options{})
	if err != nil {
		return err
	}
	rankable := 0
	for _, c := range core.RankableCounts(spec, core.Options{}) {
		rankable += c
	}
	if len(one.Assigned) != rankable {
		return fmt.Errorf("fraction=1 assigned %d of %d rankable DC minterms",
			len(one.Assigned), rankable)
	}
	return nil
}

// CheckLCFMonotonic verifies property 4 on spec: sweeping the LC^f
// threshold upward through thresholds (which must be ascending, each in
// (0,1)) never decreases the number of assigned DC minterms.
// ParallelReference bundles the sequential (parallelism 1) results of
// every kernel CheckParallelEquivalence compares, so one reference can
// be reused across worker counts.
type ParallelReference struct {
	BoundsLo, BoundsHi float64
	Cf                 float64
	Signal, Border     estimate.Bounds
	Rank               *core.Result
	LCF                *core.Result
	Impl               *tt.Function
	Metrics            synth.Metrics
	ErrorRate          float64
}

// parallelOperatingPoint pins the assignment knobs the equivalence sweep
// exercises (representative mid-range values, same as Methods()).
const (
	parEquivFraction  = 0.5
	parEquivThreshold = 0.55
)

// ParallelBaseline computes the sequential reference for property 5 on
// spec.
func ParallelBaseline(spec *tt.Function) (*ParallelReference, error) {
	ref := &ParallelReference{}
	ctx := context.Background()
	var err error
	if ref.BoundsLo, ref.BoundsHi, err = reliability.BoundsMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Cf, err = complexity.FactorMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Signal, err = estimate.SignalBasedMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Border, err = estimate.BorderBasedMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Rank, err = core.Ranking(spec, parEquivFraction, core.Options{Parallelism: 1}); err != nil {
		return nil, err
	}
	if ref.LCF, err = core.LCF(spec, parEquivThreshold, core.Options{Parallelism: 1}); err != nil {
		return nil, err
	}
	res, err := synth.Synthesize(spec, synth.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	ref.Impl, ref.Metrics = res.Impl, res.Metrics
	ref.ErrorRate, err = reliability.ErrorRateMeanCtx(ctx, spec, res.Impl, 1)
	if err != nil {
		return nil, err
	}
	return ref, nil
}

// CheckParallelEquivalence verifies property 5 on spec at worker count
// p: every parallelized kernel reproduces the sequential reference ref
// bit for bit. Float comparisons are exact (==), not within an epsilon:
// the pool writes results into index-addressed slots and reduces them
// in index order, so summation order — and therefore every bit of the
// result — is independent of the worker count.
func CheckParallelEquivalence(spec *tt.Function, ref *ParallelReference, p int) error {
	ctx := context.Background()
	lo, hi, err := reliability.BoundsMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if lo != ref.BoundsLo || hi != ref.BoundsHi {
		return fmt.Errorf("BoundsMean(p=%d) = [%v, %v], sequential [%v, %v]",
			p, lo, hi, ref.BoundsLo, ref.BoundsHi)
	}
	cf, err := complexity.FactorMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if cf != ref.Cf {
		return fmt.Errorf("FactorMean(p=%d) = %v, sequential %v", p, cf, ref.Cf)
	}
	sig, err := estimate.SignalBasedMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if sig != ref.Signal {
		return fmt.Errorf("SignalBasedMean(p=%d) = %+v, sequential %+v", p, sig, ref.Signal)
	}
	bor, err := estimate.BorderBasedMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if bor != ref.Border {
		return fmt.Errorf("BorderBasedMean(p=%d) = %+v, sequential %+v", p, bor, ref.Border)
	}
	rank, err := core.Ranking(spec, parEquivFraction, core.Options{Parallelism: p})
	if err != nil {
		return err
	}
	if !rank.Func.Equal(ref.Rank.Func) || len(rank.Assigned) != len(ref.Rank.Assigned) {
		return fmt.Errorf("Ranking(p=%d) diverged from sequential (assigned %d vs %d)",
			p, len(rank.Assigned), len(ref.Rank.Assigned))
	}
	lcf, err := core.LCF(spec, parEquivThreshold, core.Options{Parallelism: p})
	if err != nil {
		return err
	}
	if !lcf.Func.Equal(ref.LCF.Func) || len(lcf.Assigned) != len(ref.LCF.Assigned) {
		return fmt.Errorf("LCF(p=%d) diverged from sequential (assigned %d vs %d)",
			p, len(lcf.Assigned), len(ref.LCF.Assigned))
	}
	res, err := synth.Synthesize(spec, synth.Options{Parallelism: p})
	if err != nil {
		return err
	}
	if !res.Impl.Equal(ref.Impl) {
		return fmt.Errorf("Synthesize(p=%d) produced a different implementation", p)
	}
	if res.Metrics != ref.Metrics {
		return fmt.Errorf("Synthesize(p=%d) metrics %+v, sequential %+v", p, res.Metrics, ref.Metrics)
	}
	er, err := reliability.ErrorRateMeanCtx(ctx, spec, res.Impl, p)
	if err != nil {
		return err
	}
	if er != ref.ErrorRate {
		return fmt.Errorf("ErrorRateMean(p=%d) = %v, sequential %v", p, er, ref.ErrorRate)
	}
	return nil
}

// KernelReference bundles the scalar-oracle results of every quantity
// the word-parallel kernels reimplement, so one baseline can be reused
// across worker counts when checking property 6. All scalar results are
// computed sequentially (parallelism 1, Kernels forced off), never
// through the process-wide bitset.UseKernels switch — the check is
// race-free and independent of how the test binary was launched.
type KernelReference struct {
	Counts    []reliability.Counts  // exact pair counts per output
	BoundsLo  []float64             // exact min error rate per output
	BoundsHi  []float64             // exact max error rate per output
	Borders   []reliability.Borders // border counts per output
	Factor    []float64             // C^f per output
	Border    []estimate.Bounds     // Poisson border estimate per output
	Local     [][]float64           // LC^f per output per minterm
	ErrorRate []float64             // impl-vs-spec error rate per output
	SelfRate  []float64             // impl self error rate per output
	Rank      *core.Result          // ranking at parEquivFraction
	LCF       *core.Result          // LC^f assignment at parEquivThreshold
	Impl      *tt.Function          // synthesized implementation measured above
}

// KernelBaseline computes the scalar reference for property 6 on spec.
func KernelBaseline(spec *tt.Function) (*KernelReference, error) {
	impl, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	nOut := spec.NumOut()
	ref := &KernelReference{
		Counts:    make([]reliability.Counts, nOut),
		BoundsLo:  make([]float64, nOut),
		BoundsHi:  make([]float64, nOut),
		Borders:   make([]reliability.Borders, nOut),
		Factor:    make([]float64, nOut),
		Border:    make([]estimate.Bounds, nOut),
		Local:     make([][]float64, nOut),
		ErrorRate: make([]float64, nOut),
		SelfRate:  make([]float64, nOut),
		Impl:      impl,
	}
	for o := 0; o < nOut; o++ {
		ref.Counts[o] = reliability.ExactCountsScalar(spec, o)
		ref.BoundsLo[o], ref.BoundsHi[o] = reliability.BoundsScalar(spec, o)
		ref.Borders[o] = reliability.CountBordersScalar(spec, o)
		ref.Factor[o] = complexity.FactorScalar(spec, o)
		ref.Border[o] = estimate.BorderBasedScalar(spec, o)
		if ref.Local[o], err = complexity.LocalAllScalarCtx(ctx, spec, o, 1); err != nil {
			return nil, err
		}
		if ref.ErrorRate[o], err = reliability.ErrorRateScalar(spec, impl, o); err != nil {
			return nil, err
		}
		if ref.SelfRate[o], err = reliability.SelfErrorRateScalar(impl, o); err != nil {
			return nil, err
		}
	}
	scalarOpt := core.Options{Kernels: core.KernelsOff, Parallelism: 1}
	if ref.Rank, err = core.Ranking(spec, parEquivFraction, scalarOpt); err != nil {
		return nil, err
	}
	if ref.LCF, err = core.LCF(spec, parEquivThreshold, scalarOpt); err != nil {
		return nil, err
	}
	return ref, nil
}

// sameAssignments compares two assignment passes decision for decision,
// including the ranking weights recorded at decision time.
func sameAssignments(what string, got, want *core.Result) error {
	if !got.Func.Equal(want.Func) {
		return fmt.Errorf("%s: kernel path bound different minterms", what)
	}
	if len(got.Assigned) != len(want.Assigned) {
		return fmt.Errorf("%s: kernel assigned %d minterms, scalar %d",
			what, len(got.Assigned), len(want.Assigned))
	}
	for i := range got.Assigned {
		if got.Assigned[i] != want.Assigned[i] {
			return fmt.Errorf("%s: assignment %d diverged: kernel %+v, scalar %+v",
				what, i, got.Assigned[i], want.Assigned[i])
		}
	}
	return nil
}

// CheckKernelEquivalence verifies property 6 on spec at worker count p:
// every word-parallel kernel reproduces the scalar reference ref bit
// for bit. All float comparisons are exact (==): both paths accumulate
// the same integer event counts before the single final division, so
// there is no rounding to absorb. The per-output scans themselves run
// through internal/par at parallelism p, so under -race this check also
// proves the kernels (and their shared scratch) are safe to fan out.
func CheckKernelEquivalence(spec *tt.Function, ref *KernelReference, p int) error {
	ctx := context.Background()
	err := par.Do(ctx, p, spec.NumOut(), func(o int) error {
		if c := reliability.ExactCountsKernel(spec, o); c != ref.Counts[o] {
			return fmt.Errorf("output %d: ExactCounts kernel %+v, scalar %+v", o, c, ref.Counts[o])
		}
		lo, hi := reliability.BoundsKernel(spec, o)
		if lo != ref.BoundsLo[o] || hi != ref.BoundsHi[o] {
			return fmt.Errorf("output %d: Bounds kernel [%v, %v], scalar [%v, %v]",
				o, lo, hi, ref.BoundsLo[o], ref.BoundsHi[o])
		}
		if b := reliability.CountBordersKernel(spec, o); b != ref.Borders[o] {
			return fmt.Errorf("output %d: CountBorders kernel %+v, scalar %+v", o, b, ref.Borders[o])
		}
		if cf := complexity.FactorKernel(spec, o); cf != ref.Factor[o] {
			return fmt.Errorf("output %d: Factor kernel %v, scalar %v", o, cf, ref.Factor[o])
		}
		if eb := estimate.BorderBasedKernel(spec, o); eb != ref.Border[o] {
			return fmt.Errorf("output %d: BorderBased kernel %+v, scalar %+v", o, eb, ref.Border[o])
		}
		local, err := complexity.LocalAllKernelCtx(ctx, spec, o, 1)
		if err != nil {
			return err
		}
		if len(local) != len(ref.Local[o]) {
			return fmt.Errorf("output %d: LocalAll kernel length %d, scalar %d",
				o, len(local), len(ref.Local[o]))
		}
		for m := range local {
			if local[m] != ref.Local[o][m] {
				return fmt.Errorf("output %d minterm %d: LC^f kernel %v, scalar %v",
					o, m, local[m], ref.Local[o][m])
			}
		}
		er, err := reliability.ErrorRateKernel(spec, ref.Impl, o)
		if err != nil {
			return err
		}
		if er != ref.ErrorRate[o] {
			return fmt.Errorf("output %d: ErrorRate kernel %v, scalar %v", o, er, ref.ErrorRate[o])
		}
		sr, err := reliability.SelfErrorRateKernel(ref.Impl, o)
		if err != nil {
			return err
		}
		if sr != ref.SelfRate[o] {
			return fmt.Errorf("output %d: SelfErrorRate kernel %v, scalar %v", o, sr, ref.SelfRate[o])
		}
		return nil
	})
	if err != nil {
		return err
	}
	kernelOpt := core.Options{Kernels: core.KernelsOn, Parallelism: p}
	rank, err := core.Ranking(spec, parEquivFraction, kernelOpt)
	if err != nil {
		return err
	}
	if err := sameAssignments(fmt.Sprintf("Ranking(p=%d)", p), rank, ref.Rank); err != nil {
		return err
	}
	lcf, err := core.LCF(spec, parEquivThreshold, kernelOpt)
	if err != nil {
		return err
	}
	return sameAssignments(fmt.Sprintf("LCF(p=%d)", p), lcf, ref.LCF)
}

// CheckCensusEquivalence verifies property 7 on spec at worker count p:
// the fused neighbor census — one shared pass over the spec (and one
// over the reference implementation, for the error rate) — reproduces
// the scalar reference ref bit for bit through every consumer: exact
// pair counts, bounds, border counts, C^f, the LC^f fold, the Poisson
// border estimate, the error rate, and the ranking/LC^f assignment
// passes including recorded weights. All float comparisons are exact
// (==): the census carries the same integer event counts the scalar
// scans accumulate, divided once at the end. Together with property 6
// (kernel ≡ scalar) this pins fused ≡ unfused — both lanes must equal
// the same oracle exactly. The censuses are computed fresh per call,
// never through the process-global census engine, so the sweep is
// deterministic and race-free under t.Parallel.
func CheckCensusEquivalence(spec *tt.Function, ref *KernelReference, p int) error {
	ctx := context.Background()
	fc, err := census.Compute(ctx, spec, p)
	if err != nil {
		return err
	}
	implFC, err := census.Compute(ctx, ref.Impl, p)
	if err != nil {
		return err
	}
	err = par.Do(ctx, p, spec.NumOut(), func(o int) error {
		c := fc.Outs[o]
		if got := reliability.ExactCountsCensus(c); got != ref.Counts[o] {
			return fmt.Errorf("output %d: ExactCounts census %+v, scalar %+v", o, got, ref.Counts[o])
		}
		lo, hi := reliability.BoundsCensus(c)
		if lo != ref.BoundsLo[o] || hi != ref.BoundsHi[o] {
			return fmt.Errorf("output %d: Bounds census [%v, %v], scalar [%v, %v]",
				o, lo, hi, ref.BoundsLo[o], ref.BoundsHi[o])
		}
		if b := reliability.CountBordersCensus(c); b != ref.Borders[o] {
			return fmt.Errorf("output %d: CountBorders census %+v, scalar %+v", o, b, ref.Borders[o])
		}
		if cf := complexity.FactorCensus(c); cf != ref.Factor[o] {
			return fmt.Errorf("output %d: Factor census %v, scalar %v", o, cf, ref.Factor[o])
		}
		if eb := estimate.BorderBasedCensus(spec, o, c); eb != ref.Border[o] {
			return fmt.Errorf("output %d: BorderBased census %+v, scalar %+v", o, eb, ref.Border[o])
		}
		local, err := complexity.LocalAllCensusCtx(ctx, spec, o, c, 1)
		if err != nil {
			return err
		}
		if len(local) != len(ref.Local[o]) {
			return fmt.Errorf("output %d: LocalAll census length %d, scalar %d",
				o, len(local), len(ref.Local[o]))
		}
		for m := range local {
			if local[m] != ref.Local[o][m] {
				return fmt.Errorf("output %d minterm %d: LC^f census %v, scalar %v",
					o, m, local[m], ref.Local[o][m])
			}
		}
		er, err := reliability.ErrorRateCensus(spec, o, implFC.Outs[o])
		if err != nil {
			return err
		}
		if er != ref.ErrorRate[o] {
			return fmt.Errorf("output %d: ErrorRate census %v, scalar %v", o, er, ref.ErrorRate[o])
		}
		return nil
	})
	if err != nil {
		return err
	}
	censusOpt := core.Options{Census: fc.Outs, Parallelism: p}
	rank, err := core.Ranking(spec, parEquivFraction, censusOpt)
	if err != nil {
		return err
	}
	if err := sameAssignments(fmt.Sprintf("Ranking(census, p=%d)", p), rank, ref.Rank); err != nil {
		return err
	}
	lcf, err := core.LCF(spec, parEquivThreshold, censusOpt)
	if err != nil {
		return err
	}
	return sameAssignments(fmt.Sprintf("LCF(census, p=%d)", p), lcf, ref.LCF)
}

// BuildNetwork lowers spec into a k-feasible multi-level network via the
// conventional synthesis flow — the network form properties 8+ range
// over.
func BuildNetwork(spec *tt.Function, k int) (*network.Network, error) {
	res, err := synth.Synthesize(spec, synth.Options{})
	if err != nil {
		return nil, err
	}
	return network.FromAIG(res.Graph, k)
}

// CheckWindowedDCSubset verifies property 8 on nw at window depths opt:
// for every checked node, the windowed SAT spec (a) agrees with the
// exhaustive whole-network simulation spec on every minterm the window
// marks as care, (b) marks don't-care only where the exhaustive spec
// does, and (c) at full window depth equals the exhaustive spec exactly
// — the containment collapses to equality when the window covers the
// cone.
//
// maxNodes bounds how many nodes are checked (0 = every node): the two
// oracle passes each cost O(network) per node — exhaustive simulation
// of 2^NumPI vectors and a full-depth CNF — so sweeping every node of a
// multi-thousand-node network is quadratic in circuit size. Over-budget
// networks are sampled at a uniform stride from node 0, which keeps the
// check suite-wide (every benchmark, every circuit shape) at bounded
// per-benchmark cost. The property is per-node local, so a strided
// sample loses breadth, not soundness of what it does check.
func CheckWindowedDCSubset(nw *network.Network, opt network.WindowOptions, maxNodes int) error {
	stride := 1
	if n := len(nw.Nodes); maxNodes > 0 && n > maxNodes {
		stride = (n + maxNodes - 1) / maxNodes
	}
	shallow := nw.NewDCExtractor(network.SatDCOptions{Window: opt})
	fullDepth := nw.NewDCExtractor(network.SatDCOptions{Window: network.FullDepth()})
	for ni := 0; ni < len(nw.Nodes); ni += stride {
		exact := nw.LocalSpec(ni)
		win, err := shallow.LocalSpec(ni)
		if err != nil {
			return fmt.Errorf("node %d: windowed spec: %w", ni, err)
		}
		size := exact.Size()
		if win.NumIn != exact.NumIn || win.Size() != size {
			return fmt.Errorf("node %d: windowed spec has %d inputs, exhaustive %d",
				ni, win.NumIn, exact.NumIn)
		}
		for v := 0; v < size; v++ {
			wp, ep := win.Phase(0, v), exact.Phase(0, v)
			if wp == tt.DC && ep != tt.DC {
				return fmt.Errorf("node %d pattern %d: windowed spec marked DC where the exhaustive spec is care (%v)",
					ni, v, ep)
			}
			if wp != tt.DC && ep != tt.DC && wp != ep {
				return fmt.Errorf("node %d pattern %d: care phase flipped (windowed %v, exhaustive %v)",
					ni, v, wp, ep)
			}
		}
		full, err := fullDepth.LocalSpec(ni)
		if err != nil {
			return fmt.Errorf("node %d: full-depth spec: %w", ni, err)
		}
		if !full.Equal(exact) {
			return fmt.Errorf("node %d: full-depth windowed spec differs from the exhaustive spec", ni)
		}
	}
	return nil
}

// CheckLCFMonotonic verifies property 4 on spec: sweeping the LC^f
// threshold upward through thresholds (which must be ascending, each in
// (0,1)) never decreases the number of assigned DC minterms.
func CheckLCFMonotonic(spec *tt.Function, thresholds []float64) error {
	prev := -1
	prevT := 0.0
	for _, th := range thresholds {
		res, err := core.LCF(spec, th, core.Options{})
		if err != nil {
			return err
		}
		if n := len(res.Assigned); n < prev {
			return fmt.Errorf("threshold %.3f assigned %d minterms, fewer than %d at %.3f",
				th, n, prev, prevT)
		} else {
			prev, prevT = n, th
		}
	}
	return nil
}
