// Package metatest is a metamorphic test harness for the synthesis
// flow: instead of pinning exact outputs (which shift whenever a
// heuristic is tuned), it checks relations that must hold for every
// (benchmark, method) combination no matter how the heuristics evolve:
//
//  1. Care-set equivalence — the synthesized implementation agrees with
//     the specification on every care minterm (DC assignment may only
//     spend don't-cares, never flip specified behavior).
//  2. Exact-bound bracketing — the implementation's exact error rate
//     lies within the specification's analytically derived
//     [ErrorRateMin, ErrorRateMax] interval (paper §5): no DC
//     assignment can escape the bounds.
//  3. Ranking-fraction extremes — fraction 0 is a no-op (nothing
//     assigned, function unchanged) and fraction 1 leaves no
//     reliability-rankable DC unassigned.
//  4. Complexity-threshold monotonicity — raising the LC^f threshold
//     never assigns fewer DC minterms (the paper's Fig. 7 predicate is
//     "assign iff LC^f < threshold", so the assigned set grows with the
//     threshold).
//  5. Parallel ≡ sequential — every analysis and synthesis kernel that
//     fans per-output work through internal/par produces bit-identical
//     results (exact float equality, identical assignments, identical
//     netlist metrics) at every worker count. Parallelism is an
//     execution knob, never an answer knob.
//
// The harness is a plain library (returning errors, not calling
// testing.T) so the same checks can back tests, fuzzing, and one-off
// audits. internal/metatest's own test file sweeps every
// internal/benchmarks circuit against every assignment method.
package metatest

import (
	"context"
	"fmt"

	"relsyn/internal/complexity"
	"relsyn/internal/core"
	"relsyn/internal/estimate"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

// Method is one named don't-care assignment strategy under test. Apply
// returns the (partially) bound function to hand to synthesis; it must
// not mutate its input.
type Method struct {
	Name  string
	Apply func(f *tt.Function) (*tt.Function, error)
}

// Methods returns the assignment strategies the sweep covers: the
// conventional baseline plus each of the paper's reliability-driven
// algorithms at a representative operating point.
func Methods() []Method {
	return []Method{
		{Name: "none", Apply: func(f *tt.Function) (*tt.Function, error) {
			return f.Clone(), nil
		}},
		{Name: "rank-0.5", Apply: func(f *tt.Function) (*tt.Function, error) {
			res, err := core.Ranking(f, 0.5, core.Options{})
			if err != nil {
				return nil, err
			}
			return res.Func, nil
		}},
		{Name: "lcf-0.55", Apply: func(f *tt.Function) (*tt.Function, error) {
			res, err := core.LCF(f, 0.55, core.Options{})
			if err != nil {
				return nil, err
			}
			return res.Func, nil
		}},
		{Name: "complete", Apply: func(f *tt.Function) (*tt.Function, error) {
			return core.Complete(f).Func, nil
		}},
	}
}

// Synthesize runs the full conventional flow on f (espresso, factoring,
// AIG optimization, mapping) and returns the completely specified
// function the netlist computes.
func Synthesize(f *tt.Function) (*tt.Function, error) {
	res, err := synth.Synthesize(f, synth.Options{})
	if err != nil {
		return nil, err
	}
	return res.Impl, nil
}

// CheckCareSet verifies property 1: impl matches spec on every care
// minterm of every output (combinational equivalence restricted to the
// care set; the DCs are the only freedom synthesis has).
func CheckCareSet(spec, impl *tt.Function) error {
	if spec.NumIn != impl.NumIn || spec.NumOut() != impl.NumOut() {
		return fmt.Errorf("dimension mismatch: spec %d/%d vs impl %d/%d",
			spec.NumIn, spec.NumOut(), impl.NumIn, impl.NumOut())
	}
	size := spec.Size()
	for o := 0; o < spec.NumOut(); o++ {
		for m := 0; m < size; m++ {
			want := spec.Phase(o, m)
			if want == tt.DC {
				continue
			}
			if got := impl.Phase(o, m); got != want {
				return fmt.Errorf("output %d minterm %d: spec %v, impl %v",
					o, m, want, got)
			}
		}
	}
	return nil
}

// boundsEps absorbs float summation order differences between the bound
// and error-rate computations; the quantities themselves are exact
// rationals over n·2^n events.
const boundsEps = 1e-9

// CheckErrorRateBounds verifies property 2: the exact error rate of
// impl against spec lies within spec's [min, max] achievable interval.
func CheckErrorRateBounds(spec, impl *tt.Function) error {
	lo, hi, err := reliability.BoundsMean(spec)
	if err != nil {
		return err
	}
	er, err := reliability.ErrorRateMean(spec, impl)
	if err != nil {
		return err
	}
	if er < lo-boundsEps || er > hi+boundsEps {
		return fmt.Errorf("error rate %.12f outside exact bounds [%.12f, %.12f]", er, lo, hi)
	}
	return nil
}

// CheckRankingExtremes verifies property 3 on spec: fraction 0 assigns
// nothing and returns an identical function; fraction 1 assigns every
// rankable DC minterm (RankableCounts is the per-output census of DCs
// with at least one specified neighbor — the only ones ranking may
// bind).
func CheckRankingExtremes(spec *tt.Function) error {
	zero, err := core.Ranking(spec, 0, core.Options{})
	if err != nil {
		return err
	}
	if len(zero.Assigned) != 0 {
		return fmt.Errorf("fraction=0 assigned %d minterms, want 0", len(zero.Assigned))
	}
	if !zero.Func.Equal(spec) {
		return fmt.Errorf("fraction=0 modified the function")
	}

	one, err := core.Ranking(spec, 1, core.Options{})
	if err != nil {
		return err
	}
	rankable := 0
	for _, c := range core.RankableCounts(spec, core.Options{}) {
		rankable += c
	}
	if len(one.Assigned) != rankable {
		return fmt.Errorf("fraction=1 assigned %d of %d rankable DC minterms",
			len(one.Assigned), rankable)
	}
	return nil
}

// CheckLCFMonotonic verifies property 4 on spec: sweeping the LC^f
// threshold upward through thresholds (which must be ascending, each in
// (0,1)) never decreases the number of assigned DC minterms.
// ParallelReference bundles the sequential (parallelism 1) results of
// every kernel CheckParallelEquivalence compares, so one reference can
// be reused across worker counts.
type ParallelReference struct {
	BoundsLo, BoundsHi float64
	Cf                 float64
	Signal, Border     estimate.Bounds
	Rank               *core.Result
	LCF                *core.Result
	Impl               *tt.Function
	Metrics            synth.Metrics
	ErrorRate          float64
}

// parallelOperatingPoint pins the assignment knobs the equivalence sweep
// exercises (representative mid-range values, same as Methods()).
const (
	parEquivFraction  = 0.5
	parEquivThreshold = 0.55
)

// ParallelBaseline computes the sequential reference for property 5 on
// spec.
func ParallelBaseline(spec *tt.Function) (*ParallelReference, error) {
	ref := &ParallelReference{}
	ctx := context.Background()
	var err error
	if ref.BoundsLo, ref.BoundsHi, err = reliability.BoundsMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Cf, err = complexity.FactorMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Signal, err = estimate.SignalBasedMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Border, err = estimate.BorderBasedMeanCtx(ctx, spec, 1); err != nil {
		return nil, err
	}
	if ref.Rank, err = core.Ranking(spec, parEquivFraction, core.Options{Parallelism: 1}); err != nil {
		return nil, err
	}
	if ref.LCF, err = core.LCF(spec, parEquivThreshold, core.Options{Parallelism: 1}); err != nil {
		return nil, err
	}
	res, err := synth.Synthesize(spec, synth.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	ref.Impl, ref.Metrics = res.Impl, res.Metrics
	ref.ErrorRate, err = reliability.ErrorRateMeanCtx(ctx, spec, res.Impl, 1)
	if err != nil {
		return nil, err
	}
	return ref, nil
}

// CheckParallelEquivalence verifies property 5 on spec at worker count
// p: every parallelized kernel reproduces the sequential reference ref
// bit for bit. Float comparisons are exact (==), not within an epsilon:
// the pool writes results into index-addressed slots and reduces them
// in index order, so summation order — and therefore every bit of the
// result — is independent of the worker count.
func CheckParallelEquivalence(spec *tt.Function, ref *ParallelReference, p int) error {
	ctx := context.Background()
	lo, hi, err := reliability.BoundsMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if lo != ref.BoundsLo || hi != ref.BoundsHi {
		return fmt.Errorf("BoundsMean(p=%d) = [%v, %v], sequential [%v, %v]",
			p, lo, hi, ref.BoundsLo, ref.BoundsHi)
	}
	cf, err := complexity.FactorMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if cf != ref.Cf {
		return fmt.Errorf("FactorMean(p=%d) = %v, sequential %v", p, cf, ref.Cf)
	}
	sig, err := estimate.SignalBasedMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if sig != ref.Signal {
		return fmt.Errorf("SignalBasedMean(p=%d) = %+v, sequential %+v", p, sig, ref.Signal)
	}
	bor, err := estimate.BorderBasedMeanCtx(ctx, spec, p)
	if err != nil {
		return err
	}
	if bor != ref.Border {
		return fmt.Errorf("BorderBasedMean(p=%d) = %+v, sequential %+v", p, bor, ref.Border)
	}
	rank, err := core.Ranking(spec, parEquivFraction, core.Options{Parallelism: p})
	if err != nil {
		return err
	}
	if !rank.Func.Equal(ref.Rank.Func) || len(rank.Assigned) != len(ref.Rank.Assigned) {
		return fmt.Errorf("Ranking(p=%d) diverged from sequential (assigned %d vs %d)",
			p, len(rank.Assigned), len(ref.Rank.Assigned))
	}
	lcf, err := core.LCF(spec, parEquivThreshold, core.Options{Parallelism: p})
	if err != nil {
		return err
	}
	if !lcf.Func.Equal(ref.LCF.Func) || len(lcf.Assigned) != len(ref.LCF.Assigned) {
		return fmt.Errorf("LCF(p=%d) diverged from sequential (assigned %d vs %d)",
			p, len(lcf.Assigned), len(ref.LCF.Assigned))
	}
	res, err := synth.Synthesize(spec, synth.Options{Parallelism: p})
	if err != nil {
		return err
	}
	if !res.Impl.Equal(ref.Impl) {
		return fmt.Errorf("Synthesize(p=%d) produced a different implementation", p)
	}
	if res.Metrics != ref.Metrics {
		return fmt.Errorf("Synthesize(p=%d) metrics %+v, sequential %+v", p, res.Metrics, ref.Metrics)
	}
	er, err := reliability.ErrorRateMeanCtx(ctx, spec, res.Impl, p)
	if err != nil {
		return err
	}
	if er != ref.ErrorRate {
		return fmt.Errorf("ErrorRateMean(p=%d) = %v, sequential %v", p, er, ref.ErrorRate)
	}
	return nil
}

// CheckLCFMonotonic verifies property 4 on spec: sweeping the LC^f
// threshold upward through thresholds (which must be ascending, each in
// (0,1)) never decreases the number of assigned DC minterms.
func CheckLCFMonotonic(spec *tt.Function, thresholds []float64) error {
	prev := -1
	prevT := 0.0
	for _, th := range thresholds {
		res, err := core.LCF(spec, th, core.Options{})
		if err != nil {
			return err
		}
		if n := len(res.Assigned); n < prev {
			return fmt.Errorf("threshold %.3f assigned %d minterms, fewer than %d at %.3f",
				th, n, prev, prevT)
		} else {
			prev, prevT = n, th
		}
	}
	return nil
}
