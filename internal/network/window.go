// Window construction for SAT-based don't-care extraction, following
// Mishchenko & Brayton, "SAT-Based Complete Don't-Care Computation for
// Network Optimization": instead of encoding the whole network into the
// miter (which re-inherits the exhaustive 2^NumPI ceiling in solve
// effort and makes every node's CNF proportional to the circuit), each
// node gets a distance-bounded window — a TFI/TFO cone around the pivot
// plus the side inputs feeding it — and only the window is encoded.
//
// Soundness contract (the subset property the test net pins): a local
// pattern the windowed miter proves don't-care is a don't-care of the
// complete extraction. Two structural facts carry the argument:
//
//  1. Window inputs are free. The miter quantifies over all boundary
//     assignments, a superset of the value combinations the rest of the
//     network can actually produce, so "pattern never occurs in the
//     window" implies "never occurs globally" (SDC ⊆ complete SDC).
//
//  2. Window outputs are pseudo-POs. Every path from the pivot to the
//     rest of the network first crosses a member-node output that feeds
//     a non-member (or a real PO) — by construction that signal is a
//     window output. If no boundary assignment lets the complemented
//     pivot change any window output, then (by topological induction)
//     nothing outside the window ever changes either: the first outside
//     signal to differ would need a differing member output before it,
//     which the miter ruled out. So "unobservable at the window
//     boundary" implies "unobservable at every PO" (ODC ⊆ complete ODC).
//
// At full depth (TFI and TFO at least the network depth) the window
// closes over every node that can reach or feed the pivot's cone, its
// inputs collapse to the primary inputs, and its outputs to the
// PO-driving members — the windowed extraction then equals the complete
// one exactly (metamorphic property 8 enforces both directions).
package network

import "sort"

// Default window depths: deep enough to capture the reconvergence that
// produces most ODCs in k-feasible networks, shallow enough that window
// CNFs stay tens of nodes for circuits with hundreds of inputs.
const (
	DefaultWindowTFI = 4
	DefaultWindowTFO = 2
)

// WindowOptions bounds the window carved around a pivot node.
type WindowOptions struct {
	// TFI is the transitive-fanin depth: how many levels backward from
	// the pivot (and from every included fanout node) are encoded.
	// 0 means DefaultWindowTFI; negative means unbounded (full depth).
	TFI int
	// TFO is the transitive-fanout depth: how many levels of nodes fed
	// (directly or transitively) by the pivot are encoded, making their
	// outputs the observability boundary. 0 means DefaultWindowTFO;
	// negative means unbounded (full depth).
	TFO int
}

// normalized resolves the zero and negative spellings against nodes,
// the network's node count (an upper bound on its depth).
func (o WindowOptions) normalized(nodes int) (tfi, tfo int) {
	tfi, tfo = o.TFI, o.TFO
	if tfi == 0 {
		tfi = DefaultWindowTFI
	}
	if tfo == 0 {
		tfo = DefaultWindowTFO
	}
	if tfi < 0 || tfi > nodes {
		tfi = nodes
	}
	if tfo < 0 || tfo > nodes {
		tfo = nodes
	}
	return tfi, tfo
}

// FullDepth is the WindowOptions spelling for an unbounded window: the
// windowed extraction then computes the complete SDC+ODC set.
func FullDepth() WindowOptions { return WindowOptions{TFI: -1, TFO: -1} }

// Window is the carved region around one pivot node.
type Window struct {
	// Pivot is the node index the window was built for.
	Pivot int
	// Members are the encoded node indices, sorted ascending (the
	// network's topological order). Always contains Pivot.
	Members []int
	// Inputs are the boundary signals (primary inputs or non-member
	// node outputs) feeding member nodes; the miter treats them as free
	// variables shared between the two copies.
	Inputs []int
	// Outputs are the member output signals observable from outside:
	// signals driving a non-constant primary output or feeding at least
	// one non-member node. They are the miter's pseudo-POs.
	Outputs []int
}

// fanoutIndex returns, per signal id, the node indices consuming it.
func (nw *Network) fanoutIndex() [][]int {
	fo := make([][]int, nw.NumPI+len(nw.Nodes))
	for nj, nd := range nw.Nodes {
		for _, f := range nd.Fanins {
			fo[f] = append(fo[f], nj)
		}
	}
	return fo
}

// Window carves the TFI/TFO-bounded region around node ni. It never
// fails: a pivot with no observable path simply gets an empty Outputs
// slice (everything is then don't-care, like a dead node).
func (nw *Network) Window(ni int, opt WindowOptions) *Window {
	return nw.window(ni, opt, nw.fanoutIndex())
}

// window is the index-sharing variant: callers sweeping many pivots
// build the fanout index once instead of once per pivot.
func (nw *Network) window(ni int, opt WindowOptions, fo [][]int) *Window {
	tfi, tfo := opt.normalized(len(nw.Nodes))

	member := make(map[int]bool)
	member[ni] = true

	// Forward sweep: nodes within tfo levels of the pivot's output.
	frontier := []int{ni}
	for d := 0; d < tfo && len(frontier) > 0; d++ {
		var next []int
		for _, nj := range frontier {
			for _, consumer := range fo[nw.NumPI+nj] {
				if !member[consumer] {
					member[consumer] = true
					next = append(next, consumer)
				}
			}
		}
		frontier = next
	}

	// Backward sweep: tfi levels of fanin cone from every node gathered
	// so far (the pivot and its bounded fanout), capturing the side
	// inputs whose correlations produce satisfiability don't-cares.
	frontier = frontier[:0]
	for nj := range member {
		frontier = append(frontier, nj)
	}
	for d := 0; d < tfi && len(frontier) > 0; d++ {
		var next []int
		for _, nj := range frontier {
			for _, f := range nw.Nodes[nj].Fanins {
				if f < nw.NumPI {
					continue
				}
				src := f - nw.NumPI
				if !member[src] {
					member[src] = true
					next = append(next, src)
				}
			}
		}
		frontier = next
	}

	w := &Window{Pivot: ni, Members: make([]int, 0, len(member))}
	for nj := range member {
		w.Members = append(w.Members, nj)
	}
	sort.Ints(w.Members)

	// Boundary inputs: fanins of members that are not member outputs.
	seenIn := make(map[int]bool)
	for _, nj := range w.Members {
		for _, f := range nw.Nodes[nj].Fanins {
			if f >= nw.NumPI && member[f-nw.NumPI] {
				continue
			}
			if !seenIn[f] {
				seenIn[f] = true
				w.Inputs = append(w.Inputs, f)
			}
		}
	}
	sort.Ints(w.Inputs)

	// Pseudo-POs: member outputs visible outside the window.
	poDriven := make(map[int]bool)
	for i, s := range nw.POs {
		if nw.poConst[i] < 0 {
			poDriven[s] = true
		}
	}
	for _, nj := range w.Members {
		s := nw.NumPI + nj
		visible := poDriven[s]
		if !visible {
			for _, consumer := range fo[s] {
				if !member[consumer] {
					visible = true
					break
				}
			}
		}
		if visible {
			w.Outputs = append(w.Outputs, s)
		}
	}
	return w
}

// Clone deep-copies the network (node tables included), so callers can
// reassign a copy while keeping the original for equivalence checking.
func (nw *Network) Clone() *Network {
	c := &Network{
		NumPI:   nw.NumPI,
		Nodes:   make([]Node, len(nw.Nodes)),
		POs:     append([]int(nil), nw.POs...),
		poConst: append([]int(nil), nw.poConst...),
	}
	for i, nd := range nw.Nodes {
		c.Nodes[i] = Node{
			Fanins: append([]int(nil), nd.Fanins...),
			Table:  nd.Table.Clone(),
		}
	}
	return c
}
