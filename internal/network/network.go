// Package network implements the paper's §4 "nodal decomposition"
// extension: decompose a multi-level circuit into SOP nodes (the role of
// ABC's `renode`), extract each node's satisfiability and observability
// don't-cares exactly by exhaustive bit-parallel simulation, and reassign
// those internal DCs with the complexity-factor-based algorithm to
// increase logical masking of errors *inside* the circuit.
//
// A node's satisfiability DCs (SDCs) are local input patterns that never
// occur in fault-free operation; its observability DCs (ODCs) are primary
// input minterms where the node's value does not affect any primary
// output. Binding those patterns to the majority phase of their local
// neighbors means that when an upstream error drives the node into
// normally-unreachable territory, the node is more likely to mask it.
// Because the extracted DCs are exact, reassignment never changes the
// circuit's primary-output functions.
package network

import (
	"fmt"
	"sort"

	"relsyn/internal/aig"
	"relsyn/internal/bitset"
	"relsyn/internal/core"
	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/tt"
)

// MaxFanins bounds node support so local functions stay enumerable.
const MaxFanins = 6

// Node is one SOP node: a single-output function over its fanin signals.
type Node struct {
	Fanins []int       // signal ids (see Network)
	Table  *bitset.Set // truth table over len(Fanins) inputs
}

// NumIn returns the node's fanin count.
func (nd *Node) NumIn() int { return len(nd.Fanins) }

// Network is a DAG of SOP nodes. Signal ids: 0..NumPI-1 are primary
// inputs; NumPI+i is the output of Nodes[i]. Nodes are topologically
// ordered.
type Network struct {
	NumPI int
	Nodes []Node
	POs   []int // signal ids (no complement flags: nodes absorb polarity)

	// poConst marks POs that are constant; for those, POs[i] is 0 or 1
	// reinterpreted as the constant value.
	poConst []int // -1 = normal, else constant 0/1
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return len(nw.Nodes) }

// POConst reports whether primary output i is constant: -1 for a normal
// output, otherwise the constant value 0 or 1.
func (nw *Network) POConst(i int) int { return nw.poConst[i] }

// AddPO appends a primary output driven by signal s. Builders outside
// this package (e.g. the BLIF reader) use it to keep the PO bookkeeping
// consistent.
func (nw *Network) AddPO(s int) {
	nw.POs = append(nw.POs, s)
	nw.poConst = append(nw.poConst, -1)
}

// FromAIG clusters the graph into k-feasible nodes (k ≤ MaxFanins) using
// cut-based covering that minimizes node count, then materializes each
// chosen cone as an SOP node. PO polarity is folded into dedicated nodes.
func FromAIG(g *aig.Graph, k int) (*Network, error) {
	if k < 2 || k > MaxFanins {
		return nil, fmt.Errorf("network: k %d outside [2,%d]", k, MaxFanins)
	}
	total := 1 + g.NumPI() + g.NumNodes()
	cuts := enumerateCuts(g, k)

	// Area-flow DP: cost of implementing each AND node as one SOP node.
	type choice struct {
		cut  []int
		flow float64
	}
	chosen := make([]choice, total)
	fo := g.FanoutCounts()
	for i := g.NumPI() + 1; i < total; i++ {
		best := choice{flow: -1}
		for _, c := range cuts[i] {
			fl := 1.0
			for _, leaf := range c {
				if leaf > g.NumPI() {
					d := float64(fo[leaf])
					if d < 1 {
						d = 1
					}
					fl += chosen[leaf].flow / d
				}
			}
			if best.flow < 0 || fl < best.flow {
				best = choice{cut: c, flow: fl}
			}
		}
		if best.flow < 0 {
			return nil, fmt.Errorf("network: node %d has no cuts", i)
		}
		chosen[i] = best
	}

	nw := &Network{NumPI: g.NumPI()}
	sigOf := map[int]int{} // AIG node -> signal id (positive phase)
	for i := 1; i <= g.NumPI(); i++ {
		sigOf[i] = i - 1
	}
	var build func(andNode int) int
	build = func(andNode int) int {
		if s, ok := sigOf[andNode]; ok {
			return s
		}
		c := chosen[andNode]
		fanins := make([]int, len(c.cut))
		for j, leaf := range c.cut {
			if leaf <= g.NumPI() {
				fanins[j] = leaf - 1
			} else {
				fanins[j] = build(leaf)
			}
		}
		table := coneTable(g, andNode, c.cut)
		nw.Nodes = append(nw.Nodes, Node{Fanins: fanins, Table: table})
		s := nw.NumPI + len(nw.Nodes) - 1
		sigOf[andNode] = s
		return s
	}

	for i := 0; i < g.NumPO(); i++ {
		l := g.PO(i)
		switch {
		case l == aig.ConstFalse:
			nw.POs = append(nw.POs, 0)
			nw.poConst = append(nw.poConst, 0)
			continue
		case l == aig.ConstTrue:
			nw.POs = append(nw.POs, 0)
			nw.poConst = append(nw.poConst, 1)
			continue
		}
		var sig int
		if l.Node() <= g.NumPI() {
			sig = l.Node() - 1
		} else {
			sig = build(l.Node())
		}
		if l.Compl() {
			// Polarity node: single-input inverter node.
			tbl := bitset.New(2)
			tbl.Set(0)
			nw.Nodes = append(nw.Nodes, Node{Fanins: []int{sig}, Table: tbl})
			sig = nw.NumPI + len(nw.Nodes) - 1
		}
		nw.POs = append(nw.POs, sig)
		nw.poConst = append(nw.poConst, -1)
	}
	return nw, nil
}

// enumerateCuts returns per-AND-node k-feasible cuts (trivial cut
// included so parents can stop at any node).
func enumerateCuts(g *aig.Graph, k int) [][][]int {
	total := 1 + g.NumPI() + g.NumNodes()
	const maxCuts = 10
	cuts := make([][][]int, total)
	for i := 1; i <= g.NumPI(); i++ {
		cuts[i] = [][]int{{i}}
	}
	for i := g.NumPI() + 1; i < total; i++ {
		f0, f1 := g.Fanins(i)
		seen := map[string]bool{}
		var cs [][]int
		for _, c0 := range cuts[f0.Node()] {
			for _, c1 := range cuts[f1.Node()] {
				merged := mergeSorted(c0, c1, k)
				if merged == nil {
					continue
				}
				key := fmt.Sprint(merged)
				if seen[key] {
					continue
				}
				seen[key] = true
				cs = append(cs, merged)
			}
		}
		sort.SliceStable(cs, func(a, b int) bool {
			if len(cs[a]) != len(cs[b]) {
				return len(cs[a]) < len(cs[b])
			}
			return fmt.Sprint(cs[a]) < fmt.Sprint(cs[b])
		})
		if len(cs) > maxCuts {
			cs = cs[:maxCuts]
		}
		cuts[i] = append(cs, []int{i})
	}
	// Strip trivial self-cuts for the DP (they are only for parents).
	for i := g.NumPI() + 1; i < total; i++ {
		var cs [][]int
		for _, c := range cuts[i] {
			if !(len(c) == 1 && c[0] == i) {
				cs = append(cs, c)
			}
		}
		cuts[i] = cs
	}
	return cuts
}

func mergeSorted(a, b []int, k int) []int {
	out := make([]int, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i] < b[j]:
			v = a[i]
			i++
		case a[i] > b[j]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// coneTable computes the truth table of AIG node root over the given cut
// leaves by local evaluation.
func coneTable(g *aig.Graph, root int, leaves []int) *bitset.Set {
	k := len(leaves)
	size := 1 << uint(k)
	table := bitset.New(size)
	leafPos := map[int]int{}
	for i, l := range leaves {
		leafPos[l] = i
	}
	for row := 0; row < size; row++ {
		memo := map[int]bool{0: false}
		var eval func(n int) bool
		eval = func(n int) bool {
			if v, ok := memo[n]; ok {
				return v
			}
			if p, ok := leafPos[n]; ok {
				v := row>>uint(p)&1 == 1
				memo[n] = v
				return v
			}
			f0, f1 := g.Fanins(n)
			v0 := eval(f0.Node()) != f0.Compl()
			v1 := eval(f1.Node()) != f1.Compl()
			v := v0 && v1
			memo[n] = v
			return v
		}
		if eval(root) {
			table.Set(row)
		}
	}
	return table
}

// SignalTables simulates the network over the whole PI space, returning
// one truth table (2^NumPI bits) per signal.
func (nw *Network) SignalTables() []*bitset.Set {
	size := 1 << uint(nw.NumPI)
	tabs := make([]*bitset.Set, nw.NumPI+len(nw.Nodes))
	for i := 0; i < nw.NumPI; i++ {
		tabs[i] = bitset.VarPattern(size, i)
	}
	for ni, nd := range nw.Nodes {
		out := bitset.New(size)
		for m := 0; m < size; m++ {
			if nd.Table.Test(nw.localRow(tabs, nd, m)) {
				out.Set(m)
			}
		}
		tabs[nw.NumPI+ni] = out
	}
	return tabs
}

// localRow extracts node nd's local input pattern at PI minterm m.
func (nw *Network) localRow(tabs []*bitset.Set, nd Node, m int) int {
	row := 0
	for j, f := range nd.Fanins {
		if tabs[f].Test(m) {
			row |= 1 << uint(j)
		}
	}
	return row
}

// Eval evaluates all POs on one PI minterm.
func (nw *Network) Eval(minterm uint) []bool {
	vals := make([]bool, nw.NumPI+len(nw.Nodes))
	for i := 0; i < nw.NumPI; i++ {
		vals[i] = minterm>>uint(i)&1 == 1
	}
	for ni, nd := range nw.Nodes {
		row := 0
		for j, f := range nd.Fanins {
			if vals[f] {
				row |= 1 << uint(j)
			}
		}
		vals[nw.NumPI+ni] = nd.Table.Test(row)
	}
	out := make([]bool, len(nw.POs))
	for i, s := range nw.POs {
		if nw.poConst[i] >= 0 {
			out[i] = nw.poConst[i] == 1
		} else {
			out[i] = vals[s]
		}
	}
	return out
}

// POFunction returns the network's PO truth tables as a tt.Function.
func (nw *Network) POFunction() *tt.Function {
	tabs := nw.SignalTables()
	f := tt.New(nw.NumPI, len(nw.POs))
	for i, s := range nw.POs {
		switch {
		case nw.poConst[i] == 0:
			// all off
		case nw.poConst[i] == 1:
			f.Outs[i].On.FillAll()
		default:
			f.Outs[i].On.Copy(tabs[s])
		}
	}
	return f
}

// odcMask returns, for node ni, the set of PI minterms where
// complementing the node's output leaves every PO unchanged.
func (nw *Network) odcMask(tabs []*bitset.Set, ni int) *bitset.Set {
	size := 1 << uint(nw.NumPI)
	// Resimulate downstream with node ni complemented.
	alt := make([]*bitset.Set, len(tabs))
	copy(alt, tabs)
	alt[nw.NumPI+ni] = tabs[nw.NumPI+ni].Complement()
	for nj := ni + 1; nj < len(nw.Nodes); nj++ {
		nd := nw.Nodes[nj]
		changed := false
		for _, f := range nd.Fanins {
			if !alt[f].Equal(tabs[f]) {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		out := bitset.New(size)
		for m := 0; m < size; m++ {
			row := 0
			for j, f := range nd.Fanins {
				if alt[f].Test(m) {
					row |= 1 << uint(j)
				}
			}
			if nd.Table.Test(row) {
				out.Set(m)
			}
		}
		alt[nj+nw.NumPI] = out
	}
	diff := bitset.New(size)
	for i, s := range nw.POs {
		if nw.poConst[i] >= 0 {
			continue
		}
		d := alt[s].Clone()
		d.InPlaceSymDiff(tabs[s])
		diff.InPlaceUnion(d)
	}
	return diff.Complement()
}

// LocalSpec builds node ni's local function with its exact internal
// don't-cares: local patterns that never occur (SDC) or whose occurrences
// are all output-insensitive (ODC) become DC.
func (nw *Network) LocalSpec(ni int) *tt.Function {
	tabs := nw.SignalTables()
	return nw.localSpec(tabs, ni)
}

func (nw *Network) localSpec(tabs []*bitset.Set, ni int) *tt.Function {
	nd := nw.Nodes[ni]
	k := nd.NumIn()
	size := 1 << uint(nw.NumPI)
	odc := nw.odcMask(tabs, ni)

	occurs := make([]bool, 1<<uint(k))
	sensitive := make([]bool, 1<<uint(k))
	for m := 0; m < size; m++ {
		row := nw.localRow(tabs, nd, m)
		occurs[row] = true
		if !odc.Test(m) {
			sensitive[row] = true
		}
	}
	spec := tt.New(k, 1)
	for row := 0; row < 1<<uint(k); row++ {
		switch {
		case !occurs[row] || !sensitive[row]:
			spec.SetPhase(0, row, tt.DC)
		case nd.Table.Test(row):
			spec.SetPhase(0, row, tt.On)
		}
	}
	return spec
}

// ReassignLCF rewrites every node's function: extract exact internal DCs,
// bind those with local complexity factor below threshold to the majority
// neighbor phase (paper Fig. 7 applied to internal DCs), and complete the
// rest with espresso minimization (conventional assignment). Nodes are
// processed in topological order with DCs re-extracted after each change,
// so the primary-output functions are preserved exactly. It returns the
// number of DC patterns bound for reliability.
func (nw *Network) ReassignLCF(threshold float64) (int, error) {
	assigned := 0
	for ni := range nw.Nodes {
		tabs := nw.SignalTables()
		spec := nw.localSpec(tabs, ni)
		res, err := core.LCF(spec, threshold, core.Options{})
		if err != nil {
			return assigned, err
		}
		assigned += len(res.Assigned)
		nw.Nodes[ni].Table = completeConventional(res.Func)
	}
	return assigned, nil
}

// CompleteConventionalAll rewrites every node by espresso-minimizing its
// local function against its internal DCs (conventional assignment only)
// — the baseline ReassignLCF is compared against.
func (nw *Network) CompleteConventionalAll() error {
	for ni := range nw.Nodes {
		tabs := nw.SignalTables()
		spec := nw.localSpec(tabs, ni)
		nw.Nodes[ni].Table = completeConventional(spec)
	}
	return nil
}

// completeConventional spends remaining DCs via espresso and returns the
// completely specified table.
func completeConventional(spec *tt.Function) *bitset.Set {
	cov := espresso.Minimize(spec.OnCover(0), spec.DCCover(0))
	table := bitset.New(spec.Size())
	for m := 0; m < spec.Size(); m++ {
		if cov.ContainsMinterm(uint(m)) {
			table.Set(m)
		}
	}
	return table
}

// InternalErrorRate measures the fraction of (node, PI minterm) events —
// a single erroneous node output under an otherwise-correct input — that
// propagate to at least one primary output. Lower is more resilient.
func (nw *Network) InternalErrorRate() float64 {
	if len(nw.Nodes) == 0 {
		return 0
	}
	tabs := nw.SignalTables()
	size := 1 << uint(nw.NumPI)
	propagating := 0
	for ni := range nw.Nodes {
		odc := nw.odcMask(tabs, ni)
		propagating += size - odc.Count()
	}
	return float64(propagating) / float64(len(nw.Nodes)*size)
}

// InputErrorRate measures the fraction of (node, fanin wire, PI minterm)
// events — a single erroneous value on one fanin wire of one node under
// an otherwise-correct input — that propagate to a primary output. This
// is the node-granular analogue of the paper's input-error model and the
// quantity LC^f reassignment of internal DCs directly targets: an error
// arriving at a node is masked when the node's (possibly reassigned)
// local function gives the same output for the erroneous pattern.
func (nw *Network) InputErrorRate() float64 {
	if len(nw.Nodes) == 0 {
		return 0
	}
	tabs := nw.SignalTables()
	size := 1 << uint(nw.NumPI)
	propagating, events := 0, 0
	for ni, nd := range nw.Nodes {
		odc := nw.odcMask(tabs, ni)
		for b := 0; b < nd.NumIn(); b++ {
			events += size
			for m := 0; m < size; m++ {
				row := nw.localRow(tabs, nd, m)
				if nd.Table.Test(row) == nd.Table.Test(row^(1<<uint(b))) {
					continue // masked at the node itself
				}
				if !odc.Test(m) {
					propagating++
				}
			}
		}
	}
	return float64(propagating) / float64(events)
}

// TotalLiterals sums espresso-minimized SOP literals over all nodes, the
// customary technology-independent area proxy for SOP networks.
func (nw *Network) TotalLiterals() int {
	total := 0
	for _, nd := range nw.Nodes {
		cov := espresso.Minimize(tableCover(nd), nil)
		total += cov.LiteralCount()
	}
	return total
}

func tableCover(nd Node) *cube.Cover {
	cv := cube.NewCover(nd.NumIn())
	nd.Table.ForEach(func(m int) { cv.Add(cube.FromMinterm(nd.NumIn(), uint(m))) })
	return cv
}

// OnCover returns the node's on-set as a cover of minterm cubes over its
// local inputs.
func (nd Node) OnCover() *cube.Cover { return tableCover(nd) }
