package network_test

import (
	"math/rand"
	"testing"

	"relsyn/internal/aig"
	"relsyn/internal/network"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

func synthFor(f *tt.Function) (*aig.Graph, error) {
	res, err := synth.Synthesize(f, synth.Options{Objective: synth.OptimizePower})
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// The SAT-based extractor must agree exactly with the exhaustive one on
// every node of every circuit.
func TestLocalSpecSATMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	for trial := 0; trial < 5; trial++ {
		g := synthAIG(t, rng, 5+rng.Intn(3), 1+rng.Intn(3))
		nw, err := network.FromAIG(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for ni := range nw.Nodes {
			exh := nw.LocalSpec(ni)
			viaSAT, err := nw.LocalSpecSAT(ni)
			if err != nil {
				t.Fatalf("trial %d node %d: %v", trial, ni, err)
			}
			if !exh.Equal(viaSAT) {
				for v := 0; v < exh.Size(); v++ {
					if exh.Phase(0, v) != viaSAT.Phase(0, v) {
						t.Fatalf("trial %d node %d pattern %d: exhaustive %v, SAT %v",
							trial, ni, v, exh.Phase(0, v), viaSAT.Phase(0, v))
					}
				}
			}
		}
	}
}

func TestLocalSpecSATOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(232))
	g := synthAIG(t, rng, 4, 1)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.LocalSpecSAT(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := nw.LocalSpecSAT(nw.NumNodes()); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// A PO-driving node can have SDCs but no ODCs: flipping it always flips
// its PO wherever it is reachable.
func TestLocalSpecSATPODrivingNode(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	g := synthAIG(t, rng, 6, 2)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	poNodes := map[int]bool{}
	for i, s := range nw.POs {
		if nw.POConst(i) < 0 && s >= nw.NumPI {
			poNodes[s-nw.NumPI] = true
		}
	}
	tabs := nw.SignalTables()
	for ni := range poNodes {
		spec, err := nw.LocalSpecSAT(ni)
		if err != nil {
			t.Fatal(err)
		}
		// Every DC pattern of a PO driver must be unreachable (pure SDC).
		nd := nw.Nodes[ni]
		occurs := map[int]bool{}
		for m := 0; m < 1<<uint(nw.NumPI); m++ {
			row := 0
			for j, f := range nd.Fanins {
				if tabs[f].Test(m) {
					row |= 1 << uint(j)
				}
			}
			occurs[row] = true
		}
		for v := 0; v < spec.Size(); v++ {
			if spec.Phase(0, v) == tt.DC && occurs[v] {
				t.Fatalf("node %d (PO driver) pattern %d is reachable yet marked DC", ni, v)
			}
		}
	}
}

func BenchmarkLocalSpecSAT(b *testing.B) {
	rng := rand.New(rand.NewSource(234))
	f := randomFunction(rng, 7, 2, 0.4)
	res, err := synthFor(f)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := network.FromAIG(res, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ni := range nw.Nodes {
			if _, err := nw.LocalSpecSAT(ni); err != nil {
				b.Fatal(err)
			}
		}
	}
}
