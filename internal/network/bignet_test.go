package network_test

import (
	"fmt"
	"strings"
	"testing"

	"relsyn/internal/blif"
	"relsyn/internal/network"
)

// bigBLIF deterministically generates a 120-input, 13-output BLIF
// circuit: 40 majority/xor triples over the PIs, 39 overlapping two-input
// combiners (the overlap creates the correlated window inputs that yield
// satisfiability don't-cares), and 13 majority collectors driving the
// outputs. Exhaustive extraction over 2^120 minterms is out of the
// question here; the windowed engine must finish under its defaults.
func bigBLIF() string {
	var b strings.Builder
	b.WriteString(".model big\n.inputs")
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, " x%d", i)
	}
	b.WriteString("\n.outputs")
	for j := 0; j < 13; j++ {
		fmt.Fprintf(&b, " y%d", j)
	}
	b.WriteString("\n")
	for j := 0; j < 40; j++ {
		fmt.Fprintf(&b, ".names x%d x%d x%d m%d\n", 3*j, 3*j+1, 3*j+2, j)
		if j%2 == 0 {
			b.WriteString("11- 1\n1-1 1\n-11 1\n") // majority
		} else {
			b.WriteString("100 1\n010 1\n001 1\n111 1\n") // odd parity
		}
	}
	for j := 0; j < 39; j++ {
		fmt.Fprintf(&b, ".names m%d m%d p%d\n", j, j+1, j)
		switch j % 3 {
		case 0:
			b.WriteString("11 1\n") // and
		case 1:
			b.WriteString("1- 1\n-1 1\n") // or
		default:
			b.WriteString("10 1\n01 1\n") // xor
		}
	}
	// Collector y = p2 ∧ (p0 ⊙ p1). Its SDC patterns (p0,p1)=(1,0) — the
	// AND-typed p0 forces the OR-typed p1 through the shared m — have
	// care neighbors that agree in phase, so LC^f assignment binds them;
	// a symmetric collector (e.g. majority) would leave them tied.
	for j := 0; j < 13; j++ {
		fmt.Fprintf(&b, ".names p%d p%d p%d y%d\n", 3*j, 3*j+1, 3*j+2, j)
		b.WriteString("001 1\n111 1\n")
	}
	b.WriteString(".end\n")
	return b.String()
}

// The acceptance target of the windowed engine: a network far past the
// 2^n exhaustive ceiling (120 primary inputs) completes a full windowed
// LC^f reassignment under the default window and conflict budget, and
// the built-in SAT CEC proves the primary outputs unchanged.
func TestReassignLCFWindowedBigNetwork(t *testing.T) {
	nw, err := blif.Parse(strings.NewReader(bigBLIF()))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPI < 100 {
		t.Fatalf("acceptance circuit has %d PIs, need >= 100", nw.NumPI)
	}
	nodes := nw.NumNodes()
	rep, err := nw.ReassignLCFWindowed(0.55, network.SatDCOptions{})
	if err != nil {
		t.Fatalf("windowed reassignment: %v", err)
	}
	if !rep.Equivalent {
		t.Fatalf("CEC rejected the reassigned network: %+v", rep)
	}
	// With 120 PIs the exhaustive CEC fallback is unreachable: the verdict
	// must come from the SAT miter, within budget.
	if rep.CECMethod != "sat" {
		t.Fatalf("CEC method %q, want sat: %+v", rep.CECMethod, rep)
	}
	if rep.BudgetExhausted != 0 {
		t.Fatalf("%d nodes exhausted the default conflict budget: %+v", rep.BudgetExhausted, rep)
	}
	if rep.Nodes != nodes || rep.Windows != nodes || rep.SATCalls == 0 {
		t.Fatalf("accounting %+v for %d nodes", rep, nodes)
	}
	// The overlapping mid-layer guarantees correlated window inputs, so
	// the engine must find real don't-cares to bind, not just terminate.
	if rep.Assigned == 0 {
		t.Fatalf("no don't-cares bound on the acceptance circuit: %+v", rep)
	}
	// The emitted network still round-trips through the BLIF writer.
	var out strings.Builder
	if err := blif.WriteNetwork(&out, nw, "big"); err != nil {
		t.Fatal(err)
	}
	back, err := blif.Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("reassigned network not re-parseable: %v", err)
	}
	if back.NumPI != nw.NumPI || len(back.POs) != len(nw.POs) {
		t.Fatalf("round-trip interface %dx%d, want %dx%d",
			back.NumPI, len(back.POs), nw.NumPI, len(nw.POs))
	}
}
