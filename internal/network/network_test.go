package network_test

import (
	"math/rand"
	"testing"

	"relsyn/internal/aig"
	"relsyn/internal/network"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

func randomFunction(rng *rand.Rand, n, m int, dcFrac float64) *tt.Function {
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			r := rng.Float64()
			switch {
			case r < dcFrac:
				f.SetPhase(o, mm, tt.DC)
			case r < dcFrac+(1-dcFrac)/2:
				f.SetPhase(o, mm, tt.On)
			}
		}
	}
	return f
}

func synthAIG(t *testing.T, rng *rand.Rand, n, m int) *aig.Graph {
	t.Helper()
	f := randomFunction(rng, n, m, 0.4)
	res, err := synth.Synthesize(f, synth.Options{Objective: synth.OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func checkEquivalent(t *testing.T, g *aig.Graph, nw *network.Network) {
	t.Helper()
	for m := uint(0); m < 1<<uint(g.NumPI()); m++ {
		want := g.Eval(m)
		got := nw.Eval(m)
		if len(want) != len(got) {
			t.Fatal("PO count mismatch")
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("network differs from AIG at minterm %d PO %d", m, i)
			}
		}
	}
}

func TestFromAIGEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 6; trial++ {
		g := synthAIG(t, rng, 5+rng.Intn(3), 1+rng.Intn(3))
		nw, err := network.FromAIG(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalent(t, g, nw)
		for ni, nd := range nw.Nodes {
			if nd.NumIn() > 4 {
				t.Fatalf("node %d has %d fanins, k=4", ni, nd.NumIn())
			}
			for _, f := range nd.Fanins {
				if f >= nw.NumPI+ni {
					t.Fatalf("node %d fanin %d not topological", ni, f)
				}
			}
		}
	}
}

func TestFromAIGConstantsAndPassthrough(t *testing.T) {
	g := aig.New(2)
	g.AddPO(aig.ConstFalse)
	g.AddPO(aig.ConstTrue)
	g.AddPO(g.PI(0))
	g.AddPO(g.PI(1).Not())
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, g, nw)
	if nw.NumNodes() != 1 {
		t.Fatalf("expected one inverter node, got %d", nw.NumNodes())
	}
}

func TestFromAIGRejectsBadK(t *testing.T) {
	g := aig.New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	if _, err := network.FromAIG(g, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := network.FromAIG(g, network.MaxFanins+1); err == nil {
		t.Fatal("k too large accepted")
	}
}

func TestPOFunctionMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	g := synthAIG(t, rng, 6, 2)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	pf := nw.POFunction()
	for m := uint(0); m < 64; m++ {
		ev := nw.Eval(m)
		for o := range ev {
			if ev[o] != (pf.Phase(o, int(m)) == tt.On) {
				t.Fatalf("POFunction disagrees with Eval at %d out %d", m, o)
			}
		}
	}
}

func TestLocalSpecDCsAreSafe(t *testing.T) {
	// Binding local DC rows arbitrarily must never change the POs.
	rng := rand.New(rand.NewSource(143))
	g := synthAIG(t, rng, 6, 2)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := nw.POFunction()
	for ni := range nw.Nodes {
		spec := nw.LocalSpec(ni)
		// Flip the node's output at every DC row to the opposite of its
		// current value — the most adversarial safe rewrite.
		tbl := nw.Nodes[ni].Table.Clone()
		spec.Outs[0].DC.ForEach(func(row int) {
			if tbl.Test(row) {
				tbl.Clear(row)
			} else {
				tbl.Set(row)
			}
		})
		old := nw.Nodes[ni].Table
		nw.Nodes[ni].Table = tbl
		after := nw.POFunction()
		if !after.Equal(before) {
			t.Fatalf("binding DC rows of node %d changed the circuit", ni)
		}
		nw.Nodes[ni].Table = old
	}
}

func TestReassignLCFPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	for trial := 0; trial < 4; trial++ {
		g := synthAIG(t, rng, 6, 2)
		nw, err := network.FromAIG(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		before := nw.POFunction()
		if _, err := nw.ReassignLCF(0.65); err != nil {
			t.Fatal(err)
		}
		after := nw.POFunction()
		if !after.Equal(before) {
			t.Fatalf("trial %d: ReassignLCF changed the circuit function", trial)
		}
	}
}

func TestCompleteConventionalPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	g := synthAIG(t, rng, 6, 2)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := nw.POFunction()
	if err := nw.CompleteConventionalAll(); err != nil {
		t.Fatal(err)
	}
	if !nw.POFunction().Equal(before) {
		t.Fatal("conventional completion changed the circuit function")
	}
}

func TestInternalErrorRateRange(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	g := synthAIG(t, rng, 6, 2)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := nw.InternalErrorRate()
	if r < 0 || r > 1 {
		t.Fatalf("internal error rate %v outside [0,1]", r)
	}
	// The PO-driving nodes are always observable somewhere, so the rate
	// is positive for any nonconstant circuit.
	if nw.NumNodes() > 0 && r == 0 {
		t.Fatal("internal error rate 0 for nonconstant circuit")
	}
}

// Aggregate claim of the paper's nodal-decomposition extension:
// reliability-driven assignment of internal DCs reduces internal error
// propagation versus conventional-only completion.
func TestReassignImprovesInternalMaskingAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(147))
	sumConv, sumRel := 0.0, 0.0
	for trial := 0; trial < 5; trial++ {
		g := synthAIG(t, rng, 7, 2)
		nwConv, err := network.FromAIG(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		nwRel, err := network.FromAIG(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := nwConv.CompleteConventionalAll(); err != nil {
			t.Fatal(err)
		}
		if _, err := nwRel.ReassignLCF(0.7); err != nil {
			t.Fatal(err)
		}
		sumConv += nwConv.InternalErrorRate()
		sumRel += nwRel.InternalErrorRate()
	}
	if sumRel > sumConv*1.02 {
		t.Fatalf("internal reassignment worsened masking: rel=%v conv=%v", sumRel, sumConv)
	}
}

func TestTotalLiteralsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(148))
	g := synthAIG(t, rng, 6, 2)
	nw, err := network.FromAIG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() > 0 && nw.TotalLiterals() <= 0 {
		t.Fatal("TotalLiterals should be positive for nonempty network")
	}
}
