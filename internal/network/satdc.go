package network

import (
	"errors"
	"fmt"

	"relsyn/internal/core"
	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/obs"
	"relsyn/internal/sat"
	"relsyn/internal/tt"
)

// SAT don't-care extraction metrics. Resolved once (series lookup takes a
// lock) and seeded at init so the /metrics surface shows the series — at
// zero — before the first extraction runs.
var (
	satdcWindows   = obs.Default.Counter("relsyn_satdc_windows_total")
	satdcSATCalls  = obs.Default.Counter("relsyn_satdc_sat_calls_total")
	satdcExhausted = obs.Default.Counter("relsyn_satdc_budget_exhausted_total")
	satdcWinSize   = obs.Default.Histogram("relsyn_satdc_window_size")
)

func init() {
	obs.Default.SetHelp("relsyn_satdc_windows_total", "Windows carved for SAT don't-care extraction.")
	obs.Default.SetHelp("relsyn_satdc_sat_calls_total", "Per-pattern SAT solver calls during don't-care extraction.")
	obs.Default.SetHelp("relsyn_satdc_budget_exhausted_total", "Nodes whose SAT conflict budget ran out mid-extraction (partial spec returned).")
	obs.Default.SetHelp("relsyn_satdc_window_size", "Member-node count per extraction window.")
}

// SatDCOptions bounds a SAT-based don't-care extraction.
type SatDCOptions struct {
	// Window bounds the per-node cone that is encoded; the zero value
	// uses DefaultWindowTFI/DefaultWindowTFO. FullDepth() reproduces the
	// complete (exhaustive-equivalent) extraction.
	Window WindowOptions
	// MaxConflicts caps the cumulative SAT conflicts spent per node
	// across all of its local patterns (<= 0: sat.DefaultMaxConflicts).
	MaxConflicts int64
	// Interrupt, when non-nil, is polled at every conflict; returning
	// true aborts the node's extraction with a sat.ErrBudget-wrapped
	// error and a partial (still sound) specification.
	Interrupt func() bool
}

// SatDCStats aggregates extraction effort, mirroring the relsyn_satdc_*
// metric series for callers that want per-run numbers.
type SatDCStats struct {
	Windows         int // windows carved (= nodes extracted)
	SATCalls        int // per-pattern solver invocations
	BudgetExhausted int // nodes that ran out of conflict budget
	MemberNodes     int // summed window sizes, for averaging
}

func (st *SatDCStats) add(o SatDCStats) {
	st.Windows += o.Windows
	st.SATCalls += o.SATCalls
	st.BudgetExhausted += o.BudgetExhausted
	st.MemberNodes += o.MemberNodes
}

// LocalSpecSAT computes node ni's local function with its internal
// don't-cares using SAT instead of exhaustive simulation — the
// simulation-and-satisfiability approach of the paper's reference [16]
// (Mishchenko et al.). A local input pattern v is don't-care iff the
// miter
//
//	window ∧ window[node ni complemented] ∧ (some window output differs) ∧ (ni fanins = v)
//
// is unsatisfiable: either no boundary assignment produces v
// (satisfiability DC) or every occurrence is unobservable at the window
// outputs (observability DC). One incremental SAT call decides each of
// the 2^k patterns.
//
// LocalSpecSAT runs at full window depth, so it returns the same
// specification as LocalSpec (the exhaustive extractor); the test suite
// enforces the agreement. If the conflict budget runs out mid-node it
// returns the partial specification computed so far — sound, because
// undecided patterns stay care — together with an error wrapping
// sat.ErrBudget, instead of failing hard.
func (nw *Network) LocalSpecSAT(ni int) (*tt.Function, error) {
	spec, _, err := nw.localSpecWindowed(ni, SatDCOptions{Window: FullDepth()})
	return spec, err
}

// LocalSpecWindowedSAT is LocalSpecSAT restricted to a TFI/TFO-bounded
// window around the node. The returned don't-care set is a subset of the
// complete one (see window.go for the soundness argument), so any
// downstream reassignment remains PO-preserving; at full depth it equals
// the complete set. On budget exhaustion the partial specification is
// returned with an error wrapping sat.ErrBudget.
func (nw *Network) LocalSpecWindowedSAT(ni int, opt SatDCOptions) (*tt.Function, error) {
	spec, _, err := nw.localSpecWindowed(ni, opt)
	return spec, err
}

func (nw *Network) localSpecWindowed(ni int, opt SatDCOptions) (*tt.Function, SatDCStats, error) {
	return nw.newDCExtractor(opt).extract(ni)
}

// DCExtractor is a run-scoped windowed-extraction context for callers
// sweeping many nodes of one network (the metamorphic harness, custom
// reassignment loops): the fanout index and the per-node minimized
// covers are computed once and shared across LocalSpec calls, instead
// of once per call as the one-shot LocalSpecWindowedSAT entry point
// does. Not safe for concurrent use. If a node's table is rewritten
// between calls, Invalidate it first.
type DCExtractor struct {
	x *dcExtractor
}

// NewDCExtractor builds a reusable extraction context over nw.
func (nw *Network) NewDCExtractor(opt SatDCOptions) *DCExtractor {
	return &DCExtractor{x: nw.newDCExtractor(opt)}
}

// LocalSpec computes node ni's windowed local specification with the
// same semantics (and budget/partial-result contract) as
// LocalSpecWindowedSAT.
func (e *DCExtractor) LocalSpec(ni int) (*tt.Function, error) {
	spec, _, err := e.x.extract(ni)
	return spec, err
}

// Invalidate drops node ni's memoized cover after a table rewrite.
func (e *DCExtractor) Invalidate(ni int) { e.x.invalidate(ni) }

// dcExtractor amortizes the per-run state of windowed extraction over a
// whole network sweep: the fanout index (valid as long as the node DAG
// is unchanged — reassignment only swaps tables) and the per-node
// espresso-minimized covers, which every window containing the node
// would otherwise re-minimize from scratch. On large networks the cover
// cache turns O(nodes × window size) espresso calls into O(nodes).
type dcExtractor struct {
	nw     *Network
	opt    SatDCOptions
	fo     [][]int
	covers map[int]*cube.Cover
}

func (nw *Network) newDCExtractor(opt SatDCOptions) *dcExtractor {
	return &dcExtractor{
		nw:     nw,
		opt:    opt,
		fo:     nw.fanoutIndex(),
		covers: make(map[int]*cube.Cover),
	}
}

// invalidate drops the cached cover of a node whose table was rewritten.
func (x *dcExtractor) invalidate(ni int) { delete(x.covers, ni) }

// cover returns the node's minimized on-set cover, memoized per run.
func (x *dcExtractor) cover(ni int) *cube.Cover {
	if c, ok := x.covers[ni]; ok {
		return c
	}
	c := espresso.Minimize(x.nw.Nodes[ni].OnCover(), nil)
	x.covers[ni] = c
	return c
}

func (x *dcExtractor) extract(ni int) (*tt.Function, SatDCStats, error) {
	nw, opt := x.nw, x.opt
	var st SatDCStats
	if ni < 0 || ni >= len(nw.Nodes) {
		return nil, st, fmt.Errorf("network: node %d out of range", ni)
	}
	nd := nw.Nodes[ni]
	k := nd.NumIn()
	spec := tt.New(k, 1)

	w := nw.window(ni, opt.Window, x.fo)
	st.Windows, st.MemberNodes = 1, len(w.Members)
	satdcWindows.Inc()
	satdcWinSize.Observe(float64(len(w.Members)))

	enc := newWinEncoder(nw, w, x)
	enc.s.SetMaxConflicts(opt.MaxConflicts)
	enc.s.SetInterrupt(opt.Interrupt)
	if !enc.buildMiter() {
		// Nothing in the window is observable from outside: the node is
		// effectively dead and every pattern is don't-care.
		for v := 0; v < 1<<uint(k); v++ {
			spec.SetPhase(0, v, tt.DC)
		}
		return spec, st, nil
	}

	for v := 0; v < 1<<uint(k); v++ {
		assumptions := make([]sat.Lit, k)
		for j, f := range nd.Fanins {
			assumptions[j] = enc.refA(f)
			if v>>uint(j)&1 == 0 {
				assumptions[j] = assumptions[j].Not()
			}
		}
		st.SATCalls++
		satdcSATCalls.Inc()
		switch enc.s.Solve(assumptions...) {
		case sat.Unsat:
			spec.SetPhase(0, v, tt.DC)
		case sat.Unknown:
			// Budget exhausted: leave this and all remaining patterns as
			// care with the node's current phase — a sound (if weaker)
			// specification — and report the exhaustion as a typed,
			// degradable error instead of discarding the partial result.
			st.BudgetExhausted++
			satdcExhausted.Inc()
			for u := v; u < 1<<uint(k); u++ {
				if nd.Table.Test(u) {
					spec.SetPhase(0, u, tt.On)
				}
			}
			return spec, st, fmt.Errorf("network: node %d pattern %d: %w", ni, v, sat.ErrBudget)
		default:
			if nd.Table.Test(v) {
				spec.SetPhase(0, v, tt.On)
			}
		}
	}
	return spec, st, nil
}

// WindowedReassignReport summarizes a ReassignLCFWindowed run.
type WindowedReassignReport struct {
	Assigned        int    `json:"assigned"`         // DC patterns bound for reliability
	Nodes           int    `json:"nodes"`            // nodes processed
	Windows         int    `json:"windows"`          // windows carved
	SATCalls        int    `json:"sat_calls"`        // per-pattern solver calls
	BudgetExhausted int    `json:"budget_exhausted"` // nodes degraded to partial specs
	Equivalent      bool   `json:"equivalent"`       // post-reassignment CEC verdict
	CECMethod       string `json:"cec_method"`       // "sat" or "exhaustive"
}

// ReassignLCFWindowed is ReassignLCF driven by windowed SAT don't-care
// extraction instead of exhaustive simulation, so it scales to networks
// with hundreds of primary inputs. Nodes are processed in topological
// order with DCs re-extracted per node; because windowed DCs are a
// subset of the complete internal DCs, every rewrite is PO-preserving —
// and the final network is checked against the original with a SAT CEC
// anyway (the report records the verdict). Nodes whose conflict budget
// runs out degrade to their partial specification (counted in
// BudgetExhausted) rather than failing the run.
func (nw *Network) ReassignLCFWindowed(threshold float64, opt SatDCOptions) (*WindowedReassignReport, error) {
	orig := nw.Clone()
	rep := &WindowedReassignReport{Nodes: len(nw.Nodes)}
	x := nw.newDCExtractor(opt)
	for ni := range nw.Nodes {
		spec, st, err := x.extract(ni)
		rep.Windows += st.Windows
		rep.SATCalls += st.SATCalls
		rep.BudgetExhausted += st.BudgetExhausted
		if err != nil && !errors.Is(err, sat.ErrBudget) {
			return rep, err
		}
		res, err := core.LCF(spec, threshold, core.Options{})
		if err != nil {
			return rep, err
		}
		rep.Assigned += len(res.Assigned)
		nw.Nodes[ni].Table = completeConventional(res.Func)
		x.invalidate(ni)
	}
	eq, method, err := nw.EquivalentSAT(orig, opt.MaxConflicts, opt.Interrupt)
	rep.CECMethod = method
	if err != nil {
		return rep, fmt.Errorf("network: post-reassignment check: %w", err)
	}
	rep.Equivalent = eq
	if !eq {
		return rep, errors.New("network: windowed reassignment changed a PO function")
	}
	return rep, nil
}

// EquivalentSAT checks combinational equivalence of two networks with
// identical interfaces by a SAT miter over shared primary inputs. When
// the solver verdict is Unknown and the networks are small enough
// (NumPI <= 16) it degrades to exhaustive truth-table comparison
// (method "exhaustive"); otherwise it returns an error wrapping
// sat.ErrBudget.
func (nw *Network) EquivalentSAT(other *Network, maxConflicts int64, interrupt func() bool) (equal bool, method string, err error) {
	if nw.NumPI != other.NumPI || len(nw.POs) != len(other.POs) {
		return false, "", fmt.Errorf("network: interface mismatch: %dx%d vs %dx%d",
			nw.NumPI, len(nw.POs), other.NumPI, len(other.POs))
	}
	budget := nw.NumPI + 2
	for _, n := range [2]*Network{nw, other} {
		for _, nd := range n.Nodes {
			budget += 2 + (1 << uint(nd.NumIn()))
		}
	}
	budget += 4 * (len(nw.POs) + 1)
	c := &cnf{s: sat.New(budget)}
	c.s.SetMaxConflicts(maxConflicts)
	c.s.SetInterrupt(interrupt)

	pis := make([]int, nw.NumPI)
	for i := range pis {
		pis[i] = c.alloc()
	}
	constTrue := c.alloc()
	c.s.AddClause(sat.MkLit(constTrue, false))

	poLits := func(n *Network) []sat.Lit {
		vars := make([]int, n.NumPI+len(n.Nodes))
		copy(vars, pis)
		ref := func(sig int) sat.Lit { return sat.MkLit(vars[sig], false) }
		for ni, nd := range n.Nodes {
			vars[n.NumPI+ni] = c.encodeSOP(nd, ref)
		}
		lits := make([]sat.Lit, len(n.POs))
		for i, s := range n.POs {
			if n.poConst[i] >= 0 {
				lits[i] = sat.MkLit(constTrue, n.poConst[i] == 0)
			} else {
				lits[i] = ref(s)
			}
		}
		return lits
	}
	la, lb := poLits(nw), poLits(other)

	var diffs []sat.Lit
	for i := range la {
		d := sat.MkLit(c.alloc(), false)
		c.xor(d, la[i], lb[i])
		diffs = append(diffs, d)
	}
	c.s.AddClause(diffs...)

	switch c.s.Solve() {
	case sat.Unsat:
		return true, "sat", nil
	case sat.Sat:
		return false, "sat", nil
	}
	if nw.NumPI <= 16 {
		return nw.POFunction().Equal(other.POFunction()), "exhaustive", nil
	}
	return false, "", fmt.Errorf("network: equivalence verdict unknown: %w", sat.ErrBudget)
}

// cnf is a clause sink with sequential variable allocation, shared by the
// window miter and the network CEC encoder.
type cnf struct {
	s    *sat.Solver
	next int
}

func (c *cnf) alloc() int {
	c.next++
	return c.next
}

// xor asserts d ↔ a ⊕ b.
func (c *cnf) xor(d, a, b sat.Lit) {
	c.s.AddClause(d.Not(), a, b)
	c.s.AddClause(d.Not(), a.Not(), b.Not())
	c.s.AddClause(d, a, b.Not())
	c.s.AddClause(d, a.Not(), b)
}

// encodeSOP emits clauses defining a fresh variable as the node's SOP
// over ref(fanin) literals and returns that variable.
func (c *cnf) encodeSOP(nd Node, ref func(int) sat.Lit) int {
	return c.encodeCover(espresso.Minimize(tableCover(nd), nil), nd.Fanins, ref)
}

// encodeCover is encodeSOP for a pre-minimized cover, letting callers
// reuse one minimization across many encodings of the same node.
func (c *cnf) encodeCover(cov *cube.Cover, fanins []int, ref func(int) sat.Lit) int {
	y := c.alloc()
	yl := sat.MkLit(y, false)
	if cov.Len() == 0 { // constant 0
		c.s.AddClause(yl.Not())
		return y
	}
	var terms []sat.Lit
	for _, cb := range cov.Cubes {
		lits := cubeLits(cb, fanins, ref)
		if len(lits) == 0 { // universe cube: constant 1
			c.s.AddClause(yl)
			return y
		}
		t := sat.MkLit(c.alloc(), false)
		// t ↔ ∧ lits
		long := []sat.Lit{t}
		for _, l := range lits {
			c.s.AddClause(t.Not(), l)
			long = append(long, l.Not())
		}
		c.s.AddClause(long...)
		terms = append(terms, t)
	}
	// y ↔ ∨ terms
	or := []sat.Lit{yl.Not()}
	for _, t := range terms {
		c.s.AddClause(t.Not(), yl)
		or = append(or, t)
	}
	c.s.AddClause(or...)
	return y
}

// cubeLits converts a cube's bound literals to solver literals over the
// node's fanin signals.
func cubeLits(cb cube.Cube, fanins []int, ref func(int) sat.Lit) []sat.Lit {
	var out []sat.Lit
	for v := 0; v < cb.NumVars(); v++ {
		switch cb.Val(v) {
		case cube.One:
			out = append(out, ref(fanins[v]))
		case cube.Zero:
			out = append(out, ref(fanins[v]).Not())
		}
	}
	return out
}

// winEncoder Tseitin-encodes a window twice — copy B with the pivot's
// output complemented — over shared boundary-input variables. Members
// whose fanin cone inside the window cannot reach the pivot are
// identical in both copies, so they are encoded once and share their
// variable (the classic miter folding of side logic); only the pivot and
// its pivot-reachable members get a second copy.
type winEncoder struct {
	cnf
	nw   *Network
	w    *Window
	x    *dcExtractor // run-scoped cover cache
	varA []int        // signal vars, copy A (boundary inputs shared)
	varB []int
}

func newWinEncoder(nw *Network, w *Window, x *dcExtractor) *winEncoder {
	total := nw.NumPI + len(nw.Nodes)
	// Generous variable budget: inputs + 2 copies × (node + term vars)
	// per member + one XOR var per window output.
	budget := len(w.Inputs) + 2
	for _, nj := range w.Members {
		budget += 2 * (2 + (1 << uint(nw.Nodes[nj].NumIn())))
	}
	budget += len(w.Outputs) + 4
	e := &winEncoder{
		cnf:  cnf{s: sat.New(budget)},
		nw:   nw,
		w:    w,
		x:    x,
		varA: make([]int, total),
		varB: make([]int, total),
	}
	for _, sig := range w.Inputs {
		v := e.alloc()
		e.varA[sig] = v
		e.varB[sig] = v // shared
	}
	return e
}

// refA returns copy A's literal for a signal.
func (e *winEncoder) refA(sig int) sat.Lit { return sat.MkLit(e.varA[sig], false) }

// refB returns copy B's literal for a signal, complementing the pivot's
// output.
func (e *winEncoder) refB(sig int) sat.Lit {
	l := sat.MkLit(e.varB[sig], false)
	if sig == e.nw.NumPI+e.w.Pivot {
		l = l.Not()
	}
	return l
}

// pivotReach marks the members whose copy-B encoding can actually differ
// from copy A: those reachable from the pivot through member-to-member
// edges. (The flip enters the CNF only where refB reads the pivot's
// output, and propagates only through member encodings — boundary inputs
// are shared.)
func (e *winEncoder) pivotReach() map[int]bool {
	member := make(map[int]bool, len(e.w.Members))
	for _, nj := range e.w.Members {
		member[nj] = true
	}
	reach := map[int]bool{e.w.Pivot: true}
	// Members are sorted topologically, so one forward pass closes the
	// reachable set: a member's fanins all have smaller node indices.
	for _, nj := range e.w.Members {
		if reach[nj] {
			continue
		}
		for _, f := range e.nw.Nodes[nj].Fanins {
			if f >= e.nw.NumPI && member[f-e.nw.NumPI] && reach[f-e.nw.NumPI] {
				reach[nj] = true
				break
			}
		}
	}
	return reach
}

// buildMiter encodes the window and asserts that some window output
// differs between the copies. It reports false when no output can differ
// (no outputs at all, or none downstream of the pivot), in which case
// every local pattern is don't-care.
func (e *winEncoder) buildMiter() bool {
	reach := e.pivotReach()
	for _, nj := range e.w.Members {
		nd := e.nw.Nodes[nj]
		sig := e.nw.NumPI + nj
		cov := e.x.cover(nj)
		e.varA[sig] = e.encodeCover(cov, nd.Fanins, e.refA)
		if reach[nj] {
			e.varB[sig] = e.encodeCover(cov, nd.Fanins, e.refB)
		} else {
			e.varB[sig] = e.varA[sig] // side logic: fold the copies
		}
	}
	var diffs []sat.Lit
	for _, sig := range e.w.Outputs {
		nj := sig - e.nw.NumPI
		if !reach[nj] {
			continue // identical in both copies; cannot contribute a diff
		}
		a, b := e.refA(sig), e.refB(sig)
		d := sat.MkLit(e.alloc(), false)
		e.xor(d, a, b)
		diffs = append(diffs, d)
	}
	if len(diffs) == 0 {
		return false
	}
	e.s.AddClause(diffs...)
	return true
}
