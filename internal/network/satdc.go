package network

import (
	"fmt"

	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/sat"
	"relsyn/internal/tt"
)

// LocalSpecSAT computes node ni's local function with its internal
// don't-cares using SAT instead of exhaustive simulation — the
// simulation-and-satisfiability approach of the paper's reference [16]
// (Mishchenko et al.). A local input pattern v is don't-care iff the
// miter
//
//	network ∧ network[node ni complemented] ∧ (some PO differs) ∧ (ni fanins = v)
//
// is unsatisfiable: either no primary input produces v (satisfiability
// DC) or every occurrence is unobservable at the outputs (observability
// DC). One incremental SAT call decides each of the 2^k patterns, so the
// approach scales to networks beyond the exhaustive 2^NumPI range.
//
// It returns the same specification as LocalSpec (the exhaustive
// extractor); the test suite enforces the agreement.
func (nw *Network) LocalSpecSAT(ni int) (*tt.Function, error) {
	if ni < 0 || ni >= len(nw.Nodes) {
		return nil, fmt.Errorf("network: node %d out of range", ni)
	}
	nd := nw.Nodes[ni]
	k := nd.NumIn()
	spec := tt.New(k, 1)

	enc := newNetEncoder(nw, ni)
	hasDiff := enc.buildMiter()
	if !hasDiff {
		// No non-constant POs: nothing is observable; everything is DC.
		for v := 0; v < 1<<uint(k); v++ {
			spec.SetPhase(0, v, tt.DC)
		}
		return spec, nil
	}

	for v := 0; v < 1<<uint(k); v++ {
		assumptions := make([]sat.Lit, k)
		for j, f := range nd.Fanins {
			assumptions[j] = enc.refA(f)
			if v>>uint(j)&1 == 0 {
				assumptions[j] = assumptions[j].Not()
			}
		}
		switch enc.s.Solve(assumptions...) {
		case sat.Unsat:
			spec.SetPhase(0, v, tt.DC)
		case sat.Unknown:
			return nil, fmt.Errorf("network: SAT budget exhausted on node %d pattern %d", ni, v)
		default:
			if nd.Table.Test(v) {
				spec.SetPhase(0, v, tt.On)
			}
		}
	}
	return spec, nil
}

// netEncoder Tseitin-encodes two copies of the network sharing PIs, with
// node `flip` complemented in copy B.
type netEncoder struct {
	nw   *Network
	flip int
	s    *sat.Solver
	next int
	varA []int // signal vars, copy A (PIs shared at the front)
	varB []int
}

func newNetEncoder(nw *Network, flip int) *netEncoder {
	total := nw.NumPI + len(nw.Nodes)
	// Generous variable budget: PIs + 2 copies × (node + term vars) + miter.
	budget := nw.NumPI + 2
	for _, nd := range nw.Nodes {
		budget += 2 * (2 + (1 << uint(nd.NumIn())))
	}
	budget += 4 * (len(nw.POs) + 1)
	e := &netEncoder{
		nw: nw, flip: flip,
		s:    sat.New(budget),
		varA: make([]int, total),
		varB: make([]int, total),
	}
	for i := 0; i < nw.NumPI; i++ {
		e.next++
		e.varA[i] = e.next
		e.varB[i] = e.next // shared
	}
	return e
}

func (e *netEncoder) alloc() int {
	e.next++
	return e.next
}

// refA returns copy A's literal for a signal.
func (e *netEncoder) refA(sig int) sat.Lit { return sat.MkLit(e.varA[sig], false) }

// refB returns copy B's literal for a signal, complementing the flipped
// node's output.
func (e *netEncoder) refB(sig int) sat.Lit {
	l := sat.MkLit(e.varB[sig], false)
	if sig == e.nw.NumPI+e.flip {
		l = l.Not()
	}
	return l
}

// buildMiter encodes both copies and asserts that some PO differs.
// It reports false when the network has no non-constant POs.
func (e *netEncoder) buildMiter() bool {
	for ni, nd := range e.nw.Nodes {
		e.varA[e.nw.NumPI+ni] = e.encodeNode(nd, e.refA)
		e.varB[e.nw.NumPI+ni] = e.encodeNode(nd, e.refB)
	}
	var diffs []sat.Lit
	for i, s := range e.nw.POs {
		if e.nw.poConst[i] >= 0 {
			continue
		}
		a, b := e.refA(s), e.refB(s)
		d := sat.MkLit(e.alloc(), false)
		// d ↔ a ⊕ b
		e.s.AddClause(d.Not(), a, b)
		e.s.AddClause(d.Not(), a.Not(), b.Not())
		e.s.AddClause(d, a, b.Not())
		e.s.AddClause(d, a.Not(), b)
		diffs = append(diffs, d)
	}
	if len(diffs) == 0 {
		return false
	}
	e.s.AddClause(diffs...)
	return true
}

// encodeNode emits clauses defining a fresh variable as the node's SOP
// over ref(fanin) literals and returns that variable.
func (e *netEncoder) encodeNode(nd Node, ref func(int) sat.Lit) int {
	y := e.alloc()
	yl := sat.MkLit(y, false)
	cov := espresso.Minimize(tableCover(nd), nil)
	if cov.Len() == 0 { // constant 0
		e.s.AddClause(yl.Not())
		return y
	}
	var terms []sat.Lit
	for _, c := range cov.Cubes {
		lits := cubeLits(c, nd.Fanins, ref)
		if len(lits) == 0 { // universe cube: constant 1
			e.s.AddClause(yl)
			return y
		}
		t := sat.MkLit(e.alloc(), false)
		// t ↔ ∧ lits
		long := []sat.Lit{t}
		for _, l := range lits {
			e.s.AddClause(t.Not(), l)
			long = append(long, l.Not())
		}
		e.s.AddClause(long...)
		terms = append(terms, t)
	}
	// y ↔ ∨ terms
	or := []sat.Lit{yl.Not()}
	for _, t := range terms {
		e.s.AddClause(t.Not(), yl)
		or = append(or, t)
	}
	e.s.AddClause(or...)
	return y
}

// cubeLits converts a cube's bound literals to solver literals over the
// node's fanin signals.
func cubeLits(c cube.Cube, fanins []int, ref func(int) sat.Lit) []sat.Lit {
	var out []sat.Lit
	for v := 0; v < c.NumVars(); v++ {
		switch c.Val(v) {
		case cube.One:
			out = append(out, ref(fanins[v]))
		case cube.Zero:
			out = append(out, ref(fanins[v]).Not())
		}
	}
	return out
}
