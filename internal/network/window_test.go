package network_test

import (
	"reflect"
	"strings"
	"testing"

	"relsyn/internal/bitset"
	"relsyn/internal/blif"
	"relsyn/internal/network"
	"relsyn/internal/tt"
)

// chainBLIF is a 6-node chain s0→s1→…→s5 where each node also takes one
// fresh primary input, so every window boundary is exercised: signals
// 0–6 are x0–x6, node si is index i (signal 7+i), and y = s5.
const chainBLIF = `.model chain
.inputs x0 x1 x2 x3 x4 x5 x6
.outputs y
.names x0 x1 s0
11 1
.names s0 x2 s1
10 1
01 1
.names s1 x3 s2
1- 1
-1 1
.names s2 x4 s3
11 1
.names s3 x5 s4
10 1
01 1
.names s4 x6 y
1- 1
-1 1
.end
`

func chainNetwork(t *testing.T) *network.Network {
	t.Helper()
	nw, err := blif.Parse(strings.NewReader(chainBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPI != 7 || nw.NumNodes() != 6 {
		t.Fatalf("chain shape %dx%d, want 7 PIs and 6 nodes", nw.NumPI, nw.NumNodes())
	}
	return nw
}

func TestWindowChainBounds(t *testing.T) {
	nw := chainNetwork(t)
	w := nw.Window(3, network.WindowOptions{TFI: 1, TFO: 1})
	if w.Pivot != 3 {
		t.Fatalf("pivot %d", w.Pivot)
	}
	// One level forward reaches node 4; one level back from {3,4} pulls in
	// node 2 (node 3's fanin) — node 4's node fanin is the pivot itself.
	if want := []int{2, 3, 4}; !reflect.DeepEqual(w.Members, want) {
		t.Fatalf("members %v, want %v", w.Members, want)
	}
	// Boundary inputs: node 1's output (signal 8) plus the side PIs x3, x4,
	// x5 feeding the members.
	if want := []int{3, 4, 5, 8}; !reflect.DeepEqual(w.Inputs, want) {
		t.Fatalf("inputs %v, want %v", w.Inputs, want)
	}
	// Only node 4's output leaves the window (it feeds non-member node 5);
	// nodes 2 and 3 are consumed entirely inside.
	if want := []int{11}; !reflect.DeepEqual(w.Outputs, want) {
		t.Fatalf("outputs %v, want %v", w.Outputs, want)
	}
}

func TestWindowChainTFOBeforeTFI(t *testing.T) {
	// The backward sweep must start from the whole bounded fanout, not
	// just the pivot: with TFO 2 the window reaches node 2, whose fanin
	// cone then re-enters via the TFI pass.
	nw := chainNetwork(t)
	w := nw.Window(0, network.WindowOptions{TFI: 1, TFO: 2})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(w.Members, want) {
		t.Fatalf("members %v, want %v", w.Members, want)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(w.Inputs, want) {
		t.Fatalf("inputs %v, want %v", w.Inputs, want)
	}
	if want := []int{9}; !reflect.DeepEqual(w.Outputs, want) {
		t.Fatalf("outputs %v, want %v", w.Outputs, want)
	}
}

func TestWindowFullDepthClosesOverNetwork(t *testing.T) {
	nw := chainNetwork(t)
	w := nw.Window(3, network.FullDepth())
	if want := []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(w.Members, want) {
		t.Fatalf("members %v, want %v", w.Members, want)
	}
	// At full depth the boundary collapses to the primary inputs and the
	// PO driver.
	if want := []int{0, 1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(w.Inputs, want) {
		t.Fatalf("inputs %v, want %v", w.Inputs, want)
	}
	if want := []int{12}; !reflect.DeepEqual(w.Outputs, want) {
		t.Fatalf("outputs %v, want %v", w.Outputs, want)
	}
}

func TestWindowDepthSpellings(t *testing.T) {
	nw := chainNetwork(t)
	for ni := 0; ni < nw.NumNodes(); ni++ {
		zero := nw.Window(ni, network.WindowOptions{})
		expl := nw.Window(ni, network.WindowOptions{
			TFI: network.DefaultWindowTFI, TFO: network.DefaultWindowTFO,
		})
		if !reflect.DeepEqual(zero, expl) {
			t.Fatalf("node %d: zero-value window %+v differs from explicit defaults %+v", ni, zero, expl)
		}
		// Any depth at least the node count saturates, matching the
		// negative (unbounded) spelling.
		deep := nw.Window(ni, network.WindowOptions{TFI: 1000, TFO: 1000})
		full := nw.Window(ni, network.FullDepth())
		if !reflect.DeepEqual(deep, full) {
			t.Fatalf("node %d: oversized depths %+v differ from FullDepth %+v", ni, deep, full)
		}
	}
}

func TestWindowPODriverIsOutput(t *testing.T) {
	nw := chainNetwork(t)
	w := nw.Window(5, network.WindowOptions{TFI: 1, TFO: 3})
	// Node 5 has no fanout, so the forward sweep is empty; node 4 joins
	// through the fanin pass and is consumed inside the window. The PO
	// driver itself is always a pseudo-PO.
	if want := []int{4, 5}; !reflect.DeepEqual(w.Members, want) {
		t.Fatalf("members %v, want %v", w.Members, want)
	}
	if want := []int{12}; !reflect.DeepEqual(w.Outputs, want) {
		t.Fatalf("outputs %v, want %v", w.Outputs, want)
	}
}

func TestWindowDeadPivotHasNoOutputs(t *testing.T) {
	// A node with no path to a PO gets an empty Outputs slice, and its
	// windowed spec degenerates to all-DC (the dead-node contract).
	tbl := bitset.New(4)
	tbl.Set(3) // AND
	nw := &network.Network{
		NumPI: 2,
		Nodes: []network.Node{
			{Fanins: []int{0, 1}, Table: tbl.Clone()},
			{Fanins: []int{0, 1}, Table: tbl.Clone()},
		},
	}
	nw.AddPO(3) // only node 1 drives a PO; node 0 is dead
	w := nw.Window(0, network.FullDepth())
	if len(w.Outputs) != 0 {
		t.Fatalf("dead pivot has outputs %v", w.Outputs)
	}
	spec, err := nw.LocalSpecWindowedSAT(0, network.SatDCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < spec.Size(); v++ {
		if spec.Phase(0, v) != tt.DC {
			t.Fatalf("dead node pattern %d not DC", v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	nw := chainNetwork(t)
	before := nw.POFunction()
	c := nw.Clone()
	// Mutate every layer of the clone: tables, fanins, PO list.
	for ni := range c.Nodes {
		for v := 0; v < 1<<uint(c.Nodes[ni].NumIn()); v++ {
			if c.Nodes[ni].Table.Test(v) {
				c.Nodes[ni].Table.Clear(v)
			} else {
				c.Nodes[ni].Table.Set(v)
			}
		}
	}
	c.Nodes[0].Fanins[0] = 6
	c.AddPO(7)
	if !nw.POFunction().Equal(before) {
		t.Fatal("mutating the clone changed the original's PO functions")
	}
	if nw.Nodes[0].Fanins[0] != 0 || len(nw.POs) != 1 {
		t.Fatal("clone shares structure with the original")
	}
}
