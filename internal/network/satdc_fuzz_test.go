package network_test

import (
	"math/rand"
	"testing"

	"relsyn/internal/network"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

// FuzzWindowedDC drives the windowed extractor with fuzzer-chosen
// network shapes and window depths, and checks the two invariants the
// engine's soundness rests on:
//
//  1. Subset: every pattern the windowed miter marks don't-care is a
//     don't-care of the exhaustive extraction, and the shared care
//     patterns agree in phase.
//  2. PO preservation: ReassignLCFWindowed leaves every primary-output
//     function bit-identical, confirmed both by the report's CEC verdict
//     and by an independent truth-table comparison.
//
// The seed corpus brackets the window boundary: depths below, at, and
// above the synthesized cone depth (k-feasible networks from 3–7 input
// functions are 1–5 levels deep), the zero-value default spelling, and
// the negative full-depth spelling where windowed must equal exhaustive.
func FuzzWindowedDC(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(2), int8(1), int8(1)) // window underflows the cone
	f.Add(int64(2), uint8(6), uint8(2), int8(2), int8(1))
	f.Add(int64(3), uint8(7), uint8(3), int8(0), int8(0))   // defaults: near cone depth
	f.Add(int64(4), uint8(6), uint8(1), int8(-1), int8(-1)) // full depth: exact equality
	f.Add(int64(5), uint8(4), uint8(2), int8(3), int8(4))   // window overflows the cone
	f.Fuzz(func(t *testing.T, seed int64, n, m uint8, tfi, tfo int8) {
		nIn := 3 + int(n)%5  // 3..7 inputs keeps the exhaustive oracle cheap
		nOut := 1 + int(m)%3 // 1..3 outputs
		rng := rand.New(rand.NewSource(seed))
		spec := randomFunction(rng, nIn, nOut, 0.4)
		res, err := synth.Synthesize(spec, synth.Options{})
		if err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		nw, err := network.FromAIG(res.Graph, 4)
		if err != nil {
			t.Fatalf("FromAIG: %v", err)
		}
		opt := network.SatDCOptions{
			Window: network.WindowOptions{TFI: int(tfi), TFO: int(tfo)},
		}
		full := opt.Window.TFI < 0 && opt.Window.TFO < 0
		for ni := 0; ni < nw.NumNodes(); ni++ {
			exact := nw.LocalSpec(ni)
			win, err := nw.LocalSpecWindowedSAT(ni, opt)
			if err != nil {
				t.Fatalf("node %d: %v", ni, err) // budgets never bind at this size
			}
			if win.NumIn != exact.NumIn {
				t.Fatalf("node %d: spec over %d inputs, exhaustive over %d", ni, win.NumIn, exact.NumIn)
			}
			for v := 0; v < exact.Size(); v++ {
				wp, ep := win.Phase(0, v), exact.Phase(0, v)
				if wp == tt.DC && ep != tt.DC {
					t.Fatalf("node %d pattern %d: windowed DC is exhaustively care (%v)", ni, v, ep)
				}
				if wp != tt.DC && ep != tt.DC && wp != ep {
					t.Fatalf("node %d pattern %d: care phase flipped (windowed %v, exhaustive %v)", ni, v, wp, ep)
				}
				if full && wp != ep {
					t.Fatalf("node %d pattern %d: full-depth window (%v) differs from exhaustive (%v)", ni, v, wp, ep)
				}
			}
		}
		before := nw.POFunction()
		rep, err := nw.ReassignLCFWindowed(0.55, opt)
		if err != nil {
			t.Fatalf("ReassignLCFWindowed: %v", err)
		}
		if !rep.Equivalent || rep.CECMethod == "" {
			t.Fatalf("CEC verdict %+v", rep)
		}
		if rep.Windows < nw.NumNodes() || rep.Nodes != nw.NumNodes() {
			t.Fatalf("accounting %+v for %d nodes", rep, nw.NumNodes())
		}
		if !nw.POFunction().Equal(before) {
			t.Fatal("windowed reassignment changed a PO function")
		}
	})
}
