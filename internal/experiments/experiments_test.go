package experiments

import (
	"math"
	"strings"
	"testing"
)

// quickFractions keeps the sweep tests fast; cmd/experiments uses the
// full DefaultFractions grid.
var quickFractions = []float64{0, 0.5, 1}

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.DCPct <= 0 || r.DCPct >= 100 {
			t.Errorf("%s: %%DC = %v", r.Name, r.DCPct)
		}
		if r.Cf <= 0 || r.Cf >= 1 {
			t.Errorf("%s: C^f = %v", r.Name, r.Cf)
		}
	}
	out := RenderTable1(rows)
	for _, name := range []string{"bench", "ex1010", "random3"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing %s", name)
		}
	}
}

func TestFig2ShapeQuick(t *testing.T) {
	pts, err := Fig2(1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// The paper's curve: implicant count decreases as C^f rises, starting
	// near 512 at very low C^f and reaching ~0 at high C^f. Check the
	// monotone trend via endpoints.
	lo, hi := pts[0], pts[len(pts)-1]
	if lo.Cf > hi.Cf {
		t.Fatalf("points not ordered by target: %v vs %v", lo.Cf, hi.Cf)
	}
	if lo.Implicants < 256 {
		t.Errorf("low-C^f implicant count %d should be near 512", lo.Implicants)
	}
	if hi.Implicants > lo.Implicants/4 {
		t.Errorf("high-C^f implicants %d not far below low-C^f %d", hi.Implicants, lo.Implicants)
	}
	if s := RenderFig2(pts); !strings.Contains(s, "implicants") {
		t.Error("render missing header")
	}
}

func TestFig4Quick(t *testing.T) {
	rows, err := Fig4(quickFractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	improvedAtFull := 0
	for _, r := range rows {
		if math.Abs(r.NormER[0]-1) > 1e-9 {
			t.Fatalf("%s: fraction-0 not normalized to 1: %v", r.Name, r.NormER[0])
		}
		last := r.NormER[len(r.NormER)-1]
		if last > 1+1e-9 {
			t.Errorf("%s: full assignment worsened error rate: %v", r.Name, last)
		}
		if last < 1-1e-9 {
			improvedAtFull++
		}
	}
	// The paper's headline: reliability-driven assignment is effective —
	// the bulk of the suite improves.
	if improvedAtFull < 8 {
		t.Errorf("only %d/12 benchmarks improved at full assignment", improvedAtFull)
	}
	_ = RenderFig4(rows)
}

func TestFig5Quick(t *testing.T) {
	results, err := Fig5(quickFractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want 2 objectives, got %d", len(results))
	}
	for _, r := range results {
		for _, s := range [][]Fig5Stat{r.Area, r.Delay, r.Power} {
			if len(s) != len(quickFractions) {
				t.Fatal("missing sweep points")
			}
			if math.Abs(s[0].Mean-1) > 1e-9 || math.Abs(s[0].Min-1) > 1e-9 {
				t.Fatalf("fraction-0 stats not normalized: %+v", s[0])
			}
			for _, p := range s {
				if p.Min > p.Mean+1e-9 || p.Mean > p.Max+1e-9 {
					t.Fatalf("stat ordering broken: %+v", p)
				}
			}
		}
		// Paper: mean overhead grows with the fraction assigned.
		if r.Area[len(r.Area)-1].Mean < r.Area[0].Mean {
			t.Errorf("[%s] mean area should not shrink at full assignment", r.Objective)
		}
	}
	_ = RenderFig5(results)
}

func TestFig6Quick(t *testing.T) {
	cfg := Fig6Config{Inputs: 8, Outputs: 2, FunctionsPerClass: 2,
		Fractions: []float64{0, 1}, Seed: 900}
	fams, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 5 {
		t.Fatalf("want 5 families, got %d", len(fams))
	}
	for _, f := range fams {
		if math.Abs(f.Points[0].NormArea-1) > 1e-9 || math.Abs(f.Points[0].NormER-1) > 1e-9 {
			t.Fatalf("family %v not normalized at fraction 0", f.TargetCf)
		}
		last := f.Points[len(f.Points)-1]
		if last.NormER > 1+1e-9 {
			t.Errorf("family %v: error rate worsened at full assignment: %v",
				f.TargetCf, last.NormER)
		}
	}
	_ = RenderFig6(fams)
}

func TestTable2Quick(t *testing.T) {
	rows, err := Table2(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Complete assignment always achieves at least the LCF reliability
		// improvement (it binds a superset toward the same phases).
		if r.CompleteER < r.LCFER-1e-6 {
			t.Errorf("%s: complete ER improvement %v below LCF %v",
				r.Name, r.CompleteER, r.LCFER)
		}
		if r.FractionAssigned < 0 || r.FractionAssigned > 1 {
			t.Errorf("%s: fraction %v", r.Name, r.FractionAssigned)
		}
	}
	// Paper's claim: LC^f-based assignment avoids the large overheads of
	// complete assignment — its mean area improvement dominates.
	var lcfArea, compArea float64
	for _, r := range rows {
		lcfArea += r.LCFArea
		compArea += r.CompleteArea
	}
	if lcfArea < compArea {
		t.Errorf("LCF mean area improvement %v should beat complete %v",
			lcfArea/12, compArea/12)
	}
	_ = RenderTable2(rows)
}

func TestTable3Quick(t *testing.T) {
	rows, err := Table3(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	bracketOK, overshootOK := 0, 0
	for _, r := range rows {
		if r.ExactLo > r.ExactHi {
			t.Errorf("%s: inverted exact bounds", r.Name)
		}
		// Measured rates always land inside the exact bounds.
		for _, rate := range []float64{r.ConvRate, r.LCFRate} {
			if rate < r.ExactLo-1e-9 || rate > r.ExactHi+1e-9 {
				t.Errorf("%s: measured rate %v outside exact bounds [%v,%v]",
					r.Name, rate, r.ExactLo, r.ExactHi)
			}
		}
		if r.ConvDiff < -1e-9 || r.LCFDiff < -1e-9 {
			t.Errorf("%s: negative %%diff", r.Name)
		}
		if r.BorderLo <= r.ExactLo+0.02 && r.BorderHi >= r.ExactHi-0.02 {
			bracketOK++
		}
		if r.SignalLo >= r.ExactLo-1e-9 {
			overshootOK++
		}
		if r.Gates <= 0 {
			t.Errorf("%s: no gates", r.Name)
		}
	}
	if bracketOK < 10 {
		t.Errorf("border-based bracketed exact bounds on only %d/12", bracketOK)
	}
	if overshootOK < 10 {
		t.Errorf("signal-based overshoot seen on only %d/12", overshootOK)
	}
	// LC^f assignment should sit closer to the floor than conventional on
	// suite average.
	var convD, lcfD float64
	for _, r := range rows {
		convD += r.ConvDiff
		lcfD += r.LCFDiff
	}
	if lcfD > convD+1e-9 {
		t.Errorf("LCF mean %%diff %v above conventional %v", lcfD/12, convD/12)
	}
	_ = RenderTable3(rows)
}

func TestThresholdSweepQuick(t *testing.T) {
	pts, err := ThresholdSweep([]float64{0.35, 0.65})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("wrong point count")
	}
	// Higher threshold assigns at least as many DCs and buys at least as
	// much reliability (suite mean).
	if pts[1].MeanFraction < pts[0].MeanFraction {
		t.Errorf("fraction not monotone in threshold: %+v", pts)
	}
	if pts[1].MeanERImp < pts[0].MeanERImp-1e-6 {
		t.Errorf("reliability not monotone in threshold: %+v", pts)
	}
	_ = RenderThresholdSweep(pts)
}

func TestNodalQuick(t *testing.T) {
	rows, err := Nodal([]string{"bench"}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Nodes == 0 {
		t.Fatalf("bad rows: %+v", rows)
	}
	r := rows[0]
	if r.ConvRate <= 0 || r.ConvRate > 1 || r.ReassignRate <= 0 || r.ReassignRate > 1 {
		t.Fatalf("rates out of range: %+v", r)
	}
	_ = RenderNodal(rows)
}

func TestFlowsQuick(t *testing.T) {
	rows, err := Flows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	agree := 0
	for _, r := range rows {
		// Both flows complete the DCs with the same minimizer, so the
		// implemented functions — and hence the reliability improvements —
		// must agree exactly; the flows differ in structure (area).
		if math.Abs(r.SOPERImp-r.ResynERImp) > 1e-6 {
			t.Errorf("%s: ER improvement differs between flows: %v vs %v",
				r.Name, r.SOPERImp, r.ResynERImp)
		}
		if (r.SOPAreaOvh >= -1) == (r.ResynAreaOvh >= -1) {
			agree++
		}
	}
	// The overhead direction must agree on the bulk of the suite — the
	// paper's cross-validation claim.
	if agree < 9 {
		t.Errorf("area trend agreed on only %d/12 benchmarks", agree)
	}
	_ = RenderFlows(rows)
}

func TestFaultsQuick(t *testing.T) {
	rows, err := Faults([]string{"bench"}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ConvGates == 0 || r.LCFGates == 0 {
		t.Fatalf("missing gates: %+v", r)
	}
	for _, obs := range []float64{r.ConvObs, r.LCFObs} {
		if obs <= 0 || obs > 1 {
			t.Fatalf("observability out of range: %+v", r)
		}
	}
	_ = RenderFaults(rows)
}

func TestMultiBitQuick(t *testing.T) {
	rows, err := MultiBit([]string{"bench"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Complete assignment minimizes the single-bit rate by construction.
	if r.Full[0] > r.Conv[0]+1e-12 {
		t.Fatalf("complete assignment worsened 1-bit rate: %+v", r)
	}
	for k := 0; k < 3; k++ {
		if r.Conv[k] < 0 || r.Conv[k] > 1 || r.Full[k] < 0 || r.Full[k] > 1 {
			t.Fatalf("rate out of range: %+v", r)
		}
	}
	_ = RenderMultiBit(rows)
}

func TestQualityQuick(t *testing.T) {
	rows, err := Quality(2, 8000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HeurCubes < r.ExactCubes {
			t.Fatalf("heuristic beat exact at C^f %v: %+v", r.TargetCf, r)
		}
		if r.ExactCubes == 0 && r.HeurCubes > 0 {
			t.Fatalf("inconsistent counts: %+v", r)
		}
	}
	_ = RenderQuality(rows)
}

func TestConflictsQuick(t *testing.T) {
	rows, err := Conflicts()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	total, conf := 0, 0
	for _, r := range rows {
		if r.Conflicts > r.RankableDCs {
			t.Fatalf("%s: conflicts exceed candidates", r.Name)
		}
		total += r.RankableDCs
		conf += r.Conflicts
	}
	if total == 0 {
		t.Fatal("no rankable DCs across the suite")
	}
	// Paper §2.1 reports ~30%; allow a broad band around it.
	pct := 100 * float64(conf) / float64(total)
	if pct < 5 || pct > 60 {
		t.Errorf("overall conflict rate %.1f%% far from the paper's ~30%%", pct)
	}
	_ = RenderConflicts(rows)
}

func TestTiesAblationQuick(t *testing.T) {
	rows, err := TiesAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	_ = RenderTies(rows)
}
