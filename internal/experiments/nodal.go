package experiments

import (
	"relsyn/internal/benchmarks"
	"relsyn/internal/network"
	"relsyn/internal/synth"
)

// NodalRow reports the paper's §4 nodal-decomposition extension on one
// benchmark: internal error propagation before and after LC^f
// reassignment of extracted node DCs, with the SOP-literal area proxy.
type NodalRow struct {
	Name           string
	Nodes          int
	ConvRate       float64 // node-output error rate, conventional completion
	ReassignRate   float64 // after LC^f reassignment of internal DCs
	ImprovementPct float64
	// Node-input (wire) error rates — the quantity internal reassignment
	// directly targets.
	ConvInputRate       float64
	ReassignInputRate   float64
	InputImprovementPct float64
	ConvLiterals        int
	ReassignLits        int
	DCsAssigned         int
}

// NodalK is the node fanin bound used by the experiment (larger nodes
// expose more internal DCs).
const NodalK = 5

// Nodal runs the extension on the named benchmarks (small suite members
// by default — DC extraction is exact and O(nodes²·2^n)).
func Nodal(names []string, threshold float64) ([]NodalRow, error) {
	if len(names) == 0 {
		names = []string{"bench", "fout", "p3"}
	}
	rows := make([]NodalRow, len(names))
	err := parallelFor(len(names), func(i int) error {
		spec, err := benchmarks.Load(names[i])
		if err != nil {
			return err
		}
		res, err := synth.Synthesize(spec, synth.Options{Objective: synth.OptimizePower})
		if err != nil {
			return err
		}
		conv, err := network.FromAIG(res.Graph, NodalK)
		if err != nil {
			return err
		}
		rel, err := network.FromAIG(res.Graph, NodalK)
		if err != nil {
			return err
		}
		if err := conv.CompleteConventionalAll(); err != nil {
			return err
		}
		assigned, err := rel.ReassignLCF(threshold)
		if err != nil {
			return err
		}
		convRate := conv.InternalErrorRate()
		relRate := rel.InternalErrorRate()
		convIn := conv.InputErrorRate()
		relIn := rel.InputErrorRate()
		rows[i] = NodalRow{
			Name:                names[i],
			Nodes:               conv.NumNodes(),
			ConvRate:            convRate,
			ReassignRate:        relRate,
			ImprovementPct:      pctImp(convRate, relRate),
			ConvInputRate:       convIn,
			ReassignInputRate:   relIn,
			InputImprovementPct: pctImp(convIn, relIn),
			ConvLiterals:        conv.TotalLiterals(),
			ReassignLits:        rel.TotalLiterals(),
			DCsAssigned:         assigned,
		}
		return nil
	})
	return rows, err
}
