// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each experiment
// returns structured rows plus a Render* function that prints the same
// rows/series the paper reports; cmd/experiments and the repository's
// top-level benchmarks drive the same entry points.
package experiments

import (
	"context"
	"sync"

	"relsyn/internal/benchmarks"
	"relsyn/internal/complexity"
	"relsyn/internal/core"
	"relsyn/internal/espresso"
	"relsyn/internal/estimate"
	"relsyn/internal/par"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/synthetic"
	"relsyn/internal/tt"
)

// DefaultFractions is the ranking-sweep grid used by Figs. 4–6.
var DefaultFractions = []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}

// DefaultThreshold is the LC^f threshold used for Tables 2–3 (the paper
// recommends 0.45–0.65; reliability-leaning).
const DefaultThreshold = 0.55

// parallelFor runs fn(i) for i in [0,n) through the shared bounded work
// pool (internal/par): full machine parallelism, lowest-indexed error,
// panic-to-error. Rows land in index-addressed slots, so experiment
// tables are identical at every parallelism level.
func parallelFor(n int, fn func(i int) error) error {
	return par.Do(context.Background(), 0, n, fn)
}

// synthER synthesizes f and measures its mean input-error rate against
// spec, returning the implementation metrics as well.
func synthER(spec, f *tt.Function, obj synth.Objective) (synth.Metrics, float64, error) {
	res, err := synth.Synthesize(f, synth.Options{Objective: obj})
	if err != nil {
		return synth.Metrics{}, 0, err
	}
	er, err := reliability.ErrorRateMean(spec, res.Impl)
	if err != nil {
		return synth.Metrics{}, 0, err
	}
	return res.Metrics, er, nil
}

// ---------------------------------------------------------------------
// Table 1 — benchmark properties.

// Table1Row reproduces one row of paper Table 1.
type Table1Row struct {
	Name            string
	Inputs, Outputs int
	DCPct           float64
	ExpectedCf      float64
	Cf              float64
}

// Table1 measures the stand-in suite's properties.
func Table1() ([]Table1Row, error) {
	specs := benchmarks.Specs()
	rows := make([]Table1Row, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		f, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		ecf, err := complexity.ExpectedMean(f)
		if err != nil {
			return err
		}
		cf, err := complexity.FactorMean(f)
		if err != nil {
			return err
		}
		rows[i] = Table1Row{
			Name:       specs[i].Name,
			Inputs:     f.NumIn,
			Outputs:    f.NumOut(),
			DCPct:      100 * f.DCFraction(),
			ExpectedCf: ecf,
			Cf:         cf,
		}
		return nil
	})
	return rows, err
}

// ---------------------------------------------------------------------
// Figure 2 — SOP size vs complexity factor.

// Fig2Point is one generated function's measured C^f and minimal SOP
// implicant count (paper Fig. 2: 10-input, single-output synthetics).
type Fig2Point struct {
	TargetCf   float64
	Cf         float64
	Implicants int
}

// Fig2 sweeps target complexity factors and minimizes each function.
func Fig2(samplesPerTarget int, seed int64) ([]Fig2Point, error) {
	var targets []float64
	for t := 0.05; t < 1.0; t += 0.05 {
		targets = append(targets, t)
	}
	pts := make([]Fig2Point, len(targets)*samplesPerTarget)
	err := parallelFor(len(pts), func(i int) error {
		target := targets[i/samplesPerTarget]
		f, err := synthetic.Generate(synthetic.Params{
			Inputs: 10, Outputs: 1, DCFraction: 0,
			TargetCf: target, Tolerance: 0.02,
			Seed: seed + int64(i), BestEffort: true,
		})
		if err != nil {
			return err
		}
		cov := espresso.Minimize(f.OnCover(0), nil)
		pts[i] = Fig2Point{
			TargetCf:   target,
			Cf:         complexity.Factor(f, 0),
			Implicants: cov.Len(),
		}
		return nil
	})
	return pts, err
}

// ---------------------------------------------------------------------
// Figure 4 — normalized error rate vs fraction of DCs assigned.

// Fig4Row is one benchmark's error-rate trajectory over the ranking
// sweep, normalized to the conventional-assignment (fraction 0) rate.
type Fig4Row struct {
	Name      string
	Fractions []float64
	NormER    []float64
}

// Fig4 runs the ranking sweep on the whole suite.
func Fig4(fractions []float64) ([]Fig4Row, error) {
	specs := benchmarks.Specs()
	rows := make([]Fig4Row, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		spec, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		row := Fig4Row{Name: specs[i].Name, Fractions: fractions}
		var base float64
		for _, fr := range fractions {
			res, err := core.Ranking(spec, fr, core.Options{})
			if err != nil {
				return err
			}
			_, er, err := synthER(spec, res.Func, synth.OptimizePower)
			if err != nil {
				return err
			}
			if fr == 0 {
				base = er
			}
			if base == 0 {
				row.NormER = append(row.NormER, 1)
			} else {
				row.NormER = append(row.NormER, er/base)
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// ---------------------------------------------------------------------
// Figure 5 — min/max/mean overhead vs fraction, per objective.

// Fig5Stat aggregates one metric's normalized value across the suite at
// one sweep fraction.
type Fig5Stat struct {
	Fraction       float64
	Min, Max, Mean float64
}

// Fig5Result is one synthesis objective's overhead trajectories.
type Fig5Result struct {
	Objective string
	Area      []Fig5Stat
	Delay     []Fig5Stat
	Power     []Fig5Stat
}

// Fig5 sweeps the ranking fraction under delay- and power-optimized
// synthesis, reporting normalized (fraction-0 = 1.0) area/delay/power
// statistics across the suite.
func Fig5(fractions []float64) ([]Fig5Result, error) {
	specs := benchmarks.Specs()
	var out []Fig5Result
	for _, obj := range []synth.Objective{synth.OptimizeDelay, synth.OptimizePower} {
		// norm[b][fi] = metrics normalized by benchmark b's fraction-0 run.
		type triple struct{ area, delay, power float64 }
		norm := make([][]triple, len(specs))
		err := parallelFor(len(specs), func(b int) error {
			spec, err := benchmarks.Load(specs[b].Name)
			if err != nil {
				return err
			}
			var base synth.Metrics
			norm[b] = make([]triple, len(fractions))
			for fi, fr := range fractions {
				res, err := core.Ranking(spec, fr, core.Options{})
				if err != nil {
					return err
				}
				m, _, err := synthER(spec, res.Func, obj)
				if err != nil {
					return err
				}
				if fi == 0 {
					base = m
				}
				norm[b][fi] = triple{
					area:  safeDiv(m.Area, base.Area),
					delay: safeDiv(m.DelayPs, base.DelayPs),
					power: safeDiv(m.Power, base.Power),
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		r := Fig5Result{Objective: obj.String()}
		for fi, fr := range fractions {
			var a, d, p []float64
			for b := range specs {
				a = append(a, norm[b][fi].area)
				d = append(d, norm[b][fi].delay)
				p = append(p, norm[b][fi].power)
			}
			r.Area = append(r.Area, stat(fr, a))
			r.Delay = append(r.Delay, stat(fr, d))
			r.Power = append(r.Power, stat(fr, p))
		}
		out = append(out, r)
	}
	return out, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

func stat(fr float64, xs []float64) Fig5Stat {
	s := Fig5Stat{Fraction: fr, Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// ---------------------------------------------------------------------
// Figure 6 — area vs error rate trajectories by C^f family.

// Fig6Point is one (fraction, normalized area, normalized error rate)
// sample of a family trajectory.
type Fig6Point struct {
	Fraction float64
	NormArea float64
	NormER   float64
}

// Fig6Family is the averaged trajectory of one complexity-factor family.
type Fig6Family struct {
	TargetCf float64
	Points   []Fig6Point
}

// Fig6Config sizes the experiment (paper: 11-in/11-out, 60% DC, 5
// families × 10 functions).
type Fig6Config struct {
	Inputs, Outputs   int
	FunctionsPerClass int
	Fractions         []float64
	Seed              int64
}

// DefaultFig6 matches the paper's setup.
func DefaultFig6() Fig6Config {
	return Fig6Config{Inputs: 11, Outputs: 11, FunctionsPerClass: 10,
		Fractions: []float64{0, 0.25, 0.5, 0.75, 1}, Seed: 4000}
}

// Fig6 generates the synthetic families and sweeps the ranking fraction,
// averaging the normalized (area, error-rate) trajectory per family.
func Fig6(cfg Fig6Config) ([]Fig6Family, error) {
	families := []float64{0.35, 0.45, 0.55, 0.65, 0.78}
	type sample struct{ area, er []float64 } // per fraction, one per function
	acc := make([]sample, len(families))
	for i := range acc {
		acc[i] = sample{
			area: make([]float64, len(cfg.Fractions)),
			er:   make([]float64, len(cfg.Fractions)),
		}
	}
	type job struct{ fam, fn int }
	var jobs []job
	for fam := range families {
		for fn := 0; fn < cfg.FunctionsPerClass; fn++ {
			jobs = append(jobs, job{fam, fn})
		}
	}
	var mu sync.Mutex
	err := parallelFor(len(jobs), func(j int) error {
		fam, fn := jobs[j].fam, jobs[j].fn
		spec, err := synthetic.Generate(synthetic.Params{
			Inputs: cfg.Inputs, Outputs: cfg.Outputs, DCFraction: 0.6,
			TargetCf: families[fam], Tolerance: 0.02,
			Seed: cfg.Seed + int64(fam*1000+fn), BestEffort: true,
		})
		if err != nil {
			return err
		}
		var baseArea, baseER float64
		areas := make([]float64, len(cfg.Fractions))
		ers := make([]float64, len(cfg.Fractions))
		for fi, fr := range cfg.Fractions {
			res, err := core.Ranking(spec, fr, core.Options{})
			if err != nil {
				return err
			}
			m, er, err := synthER(spec, res.Func, synth.OptimizePower)
			if err != nil {
				return err
			}
			if fi == 0 {
				baseArea, baseER = m.Area, er
			}
			areas[fi] = safeDiv(m.Area, baseArea)
			ers[fi] = safeDiv(er, baseER)
		}
		mu.Lock()
		for fi := range cfg.Fractions {
			acc[fam].area[fi] += areas[fi]
			acc[fam].er[fi] += ers[fi]
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig6Family, len(families))
	for fam, target := range families {
		f := Fig6Family{TargetCf: target}
		for fi, fr := range cfg.Fractions {
			f.Points = append(f.Points, Fig6Point{
				Fraction: fr,
				NormArea: acc[fam].area[fi] / float64(cfg.FunctionsPerClass),
				NormER:   acc[fam].er[fi] / float64(cfg.FunctionsPerClass),
			})
		}
		out[fam] = f
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Table 2 — LC^f-based vs ranking-based vs complete assignment.

// Table2Row reports percentage improvements over conventional assignment
// (positive = better, matching the paper's sign convention).
type Table2Row struct {
	Name                     string
	Inputs, Outputs          int
	Cf                       float64
	LCFArea, LCFER           float64
	RankArea, RankER         float64
	CompleteArea, CompleteER float64
	FractionAssigned         float64 // LC^f fraction, matched by the ranking run
}

// Table2 runs the three assignment strategies across the suite.
func Table2(threshold float64) ([]Table2Row, error) {
	specs := benchmarks.Specs()
	rows := make([]Table2Row, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		spec, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		baseM, baseER, err := synthER(spec, spec, synth.OptimizePower)
		if err != nil {
			return err
		}
		imp := func(m synth.Metrics, er float64) (float64, float64) {
			return pctImp(baseM.Area, m.Area), pctImp(baseER, er)
		}

		lcf, err := core.LCF(spec, threshold, core.Options{})
		if err != nil {
			return err
		}
		lcfM, lcfER, err := synthER(spec, lcf.Func, synth.OptimizePower)
		if err != nil {
			return err
		}

		// Ranking at matched per-output fractions.
		counts := core.RankableCounts(spec, core.Options{})
		fracs := make([]float64, spec.NumOut())
		perOut := make([]int, spec.NumOut())
		for _, a := range lcf.Assigned {
			perOut[a.Output]++
		}
		for o := range fracs {
			if counts[o] > 0 {
				fracs[o] = float64(perOut[o]) / float64(counts[o])
				if fracs[o] > 1 {
					fracs[o] = 1
				}
			}
		}
		rank, err := core.RankingPerOutput(spec, fracs, core.Options{})
		if err != nil {
			return err
		}
		rankM, rankER, err := synthER(spec, rank.Func, synth.OptimizePower)
		if err != nil {
			return err
		}

		comp := core.Complete(spec)
		compM, compER, err := synthER(spec, comp.Func, synth.OptimizePower)
		if err != nil {
			return err
		}

		cf, err := complexity.FactorMean(spec)
		if err != nil {
			return err
		}
		row := Table2Row{
			Name: specs[i].Name, Inputs: spec.NumIn, Outputs: spec.NumOut(),
			Cf:               cf,
			FractionAssigned: lcf.FractionAssigned(),
		}
		row.LCFArea, row.LCFER = imp(lcfM, lcfER)
		row.RankArea, row.RankER = imp(rankM, rankER)
		row.CompleteArea, row.CompleteER = imp(compM, compER)
		rows[i] = row
		return nil
	})
	return rows, err
}

// pctImp converts (base, new) into a percent improvement (positive =
// improvement, i.e. the new value is smaller).
func pctImp(base, val float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - val) / base
}

// ---------------------------------------------------------------------
// Table 3 — min-max reliability estimates.

// Table3Row reproduces one row of paper Table 3.
type Table3Row struct {
	Name               string
	Gates              int
	ExactLo, ExactHi   float64
	SignalLo, SignalHi float64
	BorderLo, BorderHi float64
	ConvRate, ConvDiff float64 // measured conventional rate, % above exact min
	LCFRate, LCFDiff   float64
}

// Table3 computes exact, signal-based, and border-based bounds plus the
// measured conventional and LC^f-assigned rates.
func Table3(threshold float64) ([]Table3Row, error) {
	specs := benchmarks.Specs()
	rows := make([]Table3Row, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		spec, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		exLo, exHi, err := reliability.BoundsMean(spec)
		if err != nil {
			return err
		}
		sig, err := estimate.SignalBasedMean(spec)
		if err != nil {
			return err
		}
		bor, err := estimate.BorderBasedMean(spec)
		if err != nil {
			return err
		}

		convM, convER, err := synthER(spec, spec, synth.OptimizePower)
		if err != nil {
			return err
		}
		lcf, err := core.LCF(spec, threshold, core.Options{})
		if err != nil {
			return err
		}
		_, lcfER, err := synthER(spec, lcf.Func, synth.OptimizePower)
		if err != nil {
			return err
		}
		diff := func(rate float64) float64 {
			if exLo == 0 {
				return 0
			}
			return 100 * (rate - exLo) / exLo
		}
		rows[i] = Table3Row{
			Name: specs[i].Name, Gates: convM.Gates,
			ExactLo: exLo, ExactHi: exHi,
			SignalLo: sig.Min, SignalHi: sig.Max,
			BorderLo: bor.Min, BorderHi: bor.Max,
			ConvRate: convER, ConvDiff: diff(convER),
			LCFRate: lcfER, LCFDiff: diff(lcfER),
		}
		return nil
	})
	return rows, err
}

// ---------------------------------------------------------------------
// Ablations.

// ThresholdPoint is one LC^f threshold's suite-mean improvements.
type ThresholdPoint struct {
	Threshold              float64
	MeanAreaImp, MeanERImp float64
	MeanFraction           float64
}

// ThresholdSweep runs Table 2's LC^f arm across thresholds (ablation A2).
func ThresholdSweep(thresholds []float64) ([]ThresholdPoint, error) {
	specs := benchmarks.Specs()
	out := make([]ThresholdPoint, len(thresholds))
	for ti, th := range thresholds {
		var mu sync.Mutex
		var sumArea, sumER, sumFrac float64
		err := parallelFor(len(specs), func(i int) error {
			spec, err := benchmarks.Load(specs[i].Name)
			if err != nil {
				return err
			}
			baseM, baseER, err := synthER(spec, spec, synth.OptimizePower)
			if err != nil {
				return err
			}
			lcf, err := core.LCF(spec, th, core.Options{})
			if err != nil {
				return err
			}
			m, er, err := synthER(spec, lcf.Func, synth.OptimizePower)
			if err != nil {
				return err
			}
			mu.Lock()
			sumArea += pctImp(baseM.Area, m.Area)
			sumER += pctImp(baseER, er)
			sumFrac += lcf.FractionAssigned()
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		n := float64(len(specs))
		out[ti] = ThresholdPoint{Threshold: th,
			MeanAreaImp: sumArea / n, MeanERImp: sumER / n, MeanFraction: sumFrac / n}
	}
	return out, nil
}

// TiesPoint compares tie handling at full ranking assignment
// (ablation A1: paper Fig. 7's literal tie-assignment vs leaving ties DC).
type TiesPoint struct {
	Name                      string
	FlexAreaImp, FlexER       float64
	LiteralAreaImp, LiteralER float64
}

// TiesAblation measures both tie policies across the suite.
func TiesAblation() ([]TiesPoint, error) {
	specs := benchmarks.Specs()
	rows := make([]TiesPoint, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		spec, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		baseM, baseER, err := synthER(spec, spec, synth.OptimizePower)
		if err != nil {
			return err
		}
		row := TiesPoint{Name: specs[i].Name}
		for _, literal := range []bool{false, true} {
			res, err := core.Ranking(spec, 1.0, core.Options{AssignTies: literal})
			if err != nil {
				return err
			}
			m, er, err := synthER(spec, res.Func, synth.OptimizePower)
			if err != nil {
				return err
			}
			if literal {
				row.LiteralAreaImp, row.LiteralER = pctImp(baseM.Area, m.Area), pctImp(baseER, er)
			} else {
				row.FlexAreaImp, row.FlexER = pctImp(baseM.Area, m.Area), pctImp(baseER, er)
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}
