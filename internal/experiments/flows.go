package experiments

import (
	"relsyn/internal/benchmarks"
	"relsyn/internal/core"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

// FlowRow cross-validates the ranking result on one benchmark across the
// two independent synthesis flows (the paper re-ran its benchmarks
// through ABC's resyn2rs to confirm trends were not a Design Compiler
// artefact; here FlowResyn plays that role against FlowSOP).
type FlowRow struct {
	Name string
	// Error-rate improvement (%) and area overhead (%) of full ranking
	// assignment vs conventional, under each flow.
	SOPERImp, SOPAreaOvh     float64
	ResynERImp, ResynAreaOvh float64
}

// Flows measures full ranking assignment under both flows.
func Flows() ([]FlowRow, error) {
	specs := benchmarks.Specs()
	rows := make([]FlowRow, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		spec, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		assigned, err := core.Ranking(spec, 1.0, core.Options{})
		if err != nil {
			return err
		}
		row := FlowRow{Name: specs[i].Name}
		for _, flow := range []synth.Flow{synth.FlowSOP, synth.FlowResyn} {
			run := func(f *tt.Function) (synth.Metrics, float64, error) {
				res, err := synth.Synthesize(f, synth.Options{
					Objective: synth.OptimizePower, Flow: flow})
				if err != nil {
					return synth.Metrics{}, 0, err
				}
				er, err := reliability.ErrorRateMean(spec, res.Impl)
				if err != nil {
					return synth.Metrics{}, 0, err
				}
				return res.Metrics, er, nil
			}
			baseM, baseER, err := run(spec)
			if err != nil {
				return err
			}
			m, er, err := run(assigned.Func)
			if err != nil {
				return err
			}
			erImp := pctImp(baseER, er)
			areaOvh := -pctImp(baseM.Area, m.Area)
			if flow == synth.FlowSOP {
				row.SOPERImp, row.SOPAreaOvh = erImp, areaOvh
			} else {
				row.ResynERImp, row.ResynAreaOvh = erImp, areaOvh
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}
