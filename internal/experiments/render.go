package experiments

import (
	"fmt"
	"strings"
)

// RenderTable1 prints the suite properties in paper Table 1's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Published and synthetic benchmark properties (stand-in suite)\n")
	fmt.Fprintf(&b, "%-9s %6s %7s %7s %8s %7s\n", "Name", "Inputs", "Outputs", "%DC", "E[C^f]", "C^f")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %6d %7d %7.1f %8.3f %7.3f\n",
			r.Name, r.Inputs, r.Outputs, r.DCPct, r.ExpectedCf, r.Cf)
	}
	return b.String()
}

// RenderFig2 prints (C^f, implicant count) pairs binned by target.
func RenderFig2(pts []Fig2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: SOP size vs complexity factor (10-input, 1-output synthetics)\n")
	fmt.Fprintf(&b, "%8s %8s %10s\n", "target", "C^f", "implicants")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.2f %8.3f %10d\n", p.TargetCf, p.Cf, p.Implicants)
	}
	return b.String()
}

// RenderFig4 prints each benchmark's normalized error-rate series.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Normalized error rate vs fraction of DCs assigned (ranking-based)\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-9s", "bench")
	for _, fr := range rows[0].Fractions {
		fmt.Fprintf(&b, " %6.3f", fr)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s", r.Name)
		for _, v := range r.NormER {
			fmt.Fprintf(&b, " %6.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFig5 prints min/max/mean normalized area, delay, power per
// objective.
func RenderFig5(results []Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Normalized min/max/mean overhead vs fraction assigned\n")
	for _, r := range results {
		fmt.Fprintf(&b, "[%s-optimized]\n", r.Objective)
		fmt.Fprintf(&b, "%8s | %-23s | %-23s | %-23s\n", "fraction",
			"area min/mean/max", "delay min/mean/max", "power min/mean/max")
		for i := range r.Area {
			a, d, p := r.Area[i], r.Delay[i], r.Power[i]
			fmt.Fprintf(&b, "%8.3f | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f\n",
				a.Fraction, a.Min, a.Mean, a.Max, d.Min, d.Mean, d.Max, p.Min, p.Mean, p.Max)
		}
	}
	return b.String()
}

// RenderFig6 prints per-family (area, error-rate) trajectories.
func RenderFig6(fams []Fig6Family) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Area vs error rate for synthetic benchmark families\n")
	for _, f := range fams {
		fmt.Fprintf(&b, "[C^f ≈ %.2f]\n", f.TargetCf)
		fmt.Fprintf(&b, "%10s %10s %10s\n", "fraction", "norm.area", "norm.ER")
		for _, p := range f.Points {
			fmt.Fprintf(&b, "%10.3f %10.3f %10.3f\n", p.Fraction, p.NormArea, p.NormER)
		}
	}
	return b.String()
}

// RenderTable2 prints percentage improvements per assignment strategy.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Complexity-factor-based assignment results (%% improvement; negative = overhead)\n")
	fmt.Fprintf(&b, "%-9s %3s %3s %6s | %7s %7s | %7s %7s | %7s %7s | %6s\n",
		"Name", "i", "o", "C^f", "LCFarea", "LCF ER", "RNKarea", "RNK ER", "CMParea", "CMP ER", "frac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %3d %3d %6.3f | %7.1f %7.1f | %7.1f %7.1f | %7.1f %7.1f | %6.2f\n",
			r.Name, r.Inputs, r.Outputs, r.Cf,
			r.LCFArea, r.LCFER, r.RankArea, r.RankER,
			r.CompleteArea, r.CompleteER, r.FractionAssigned)
	}
	return b.String()
}

// RenderTable3 prints the min-max estimates and measured rates.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Min-max reliability estimates\n")
	fmt.Fprintf(&b, "%-9s %5s | %6s %6s | %6s %6s | %6s %6s | %6s %7s | %6s %7s\n",
		"Name", "Gates", "ExLo", "ExHi", "SigLo", "SigHi", "BrdLo", "BrdHi",
		"Conv", "%Diff", "LCF", "%Diff")
	var convD, lcfD, convR, lcfR float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %5d | %6.3f %6.3f | %6.3f %6.3f | %6.3f %6.3f | %6.3f %7.1f | %6.3f %7.1f\n",
			r.Name, r.Gates, r.ExactLo, r.ExactHi, r.SignalLo, r.SignalHi,
			r.BorderLo, r.BorderHi, r.ConvRate, r.ConvDiff, r.LCFRate, r.LCFDiff)
		convD += r.ConvDiff
		lcfD += r.LCFDiff
		convR += r.ConvRate
		lcfR += r.LCFRate
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-9s %5s | %6s %6s | %6s %6s | %6s %6s | %6.3f %7.1f | %6.3f %7.1f\n",
		"Average", "-", "", "", "", "", "", "", convR/n, convD/n, lcfR/n, lcfD/n)
	return b.String()
}

// RenderThresholdSweep prints the LC^f threshold ablation.
func RenderThresholdSweep(pts []ThresholdPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A2: LC^f threshold sweep (suite means)\n")
	fmt.Fprintf(&b, "%9s %12s %12s %10s\n", "threshold", "area imp %", "ER imp %", "fraction")
	for _, p := range pts {
		fmt.Fprintf(&b, "%9.2f %12.2f %12.2f %10.3f\n",
			p.Threshold, p.MeanAreaImp, p.MeanERImp, p.MeanFraction)
	}
	return b.String()
}

// RenderTies prints the tie-handling ablation.
func RenderTies(rows []TiesPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A1: tie handling at full ranking assignment (%% improvement)\n")
	fmt.Fprintf(&b, "%-9s | %9s %9s | %9s %9s\n", "Name",
		"flexArea", "flexER", "litArea", "litER")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %9.1f %9.1f | %9.1f %9.1f\n",
			r.Name, r.FlexAreaImp, r.FlexER, r.LiteralAreaImp, r.LiteralER)
	}
	return b.String()
}

// RenderFlows prints the flow cross-validation.
func RenderFlows(rows []FlowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-validation: full ranking assignment under two independent flows\n")
	fmt.Fprintf(&b, "%-9s | %10s %10s | %10s %10s\n", "Name",
		"SOP ERimp%", "SOP area%", "RSN ERimp%", "RSN area%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %10.1f %10.1f | %10.1f %10.1f\n",
			r.Name, r.SOPERImp, r.SOPAreaOvh, r.ResynERImp, r.ResynAreaOvh)
	}
	return b.String()
}

// RenderFaults prints the gate-level stuck-at extension.
func RenderFaults(rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A4: gate-level stuck-at fault observability (exhaustive)\n")
	fmt.Fprintf(&b, "%-9s | %6s %9s %6s | %6s %9s %6s\n", "Name",
		"gates", "conv obs", "undet", "gates", "LCF obs", "undet")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %6d %9.4f %6d | %6d %9.4f %6d\n",
			r.Name, r.ConvGates, r.ConvObs, r.ConvUndet,
			r.LCFGates, r.LCFObs, r.LCFUndet)
	}
	return b.String()
}

// RenderMultiBit prints the k-bit error-rate extension.
func RenderMultiBit(rows []MultiBitRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A5: exact k-bit input error rates (conventional vs complete assignment)\n")
	fmt.Fprintf(&b, "%-9s | %8s %8s %8s | %8s %8s %8s\n", "Name",
		"conv k=1", "k=2", "k=3", "full k=1", "k=2", "k=3")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %8.4f %8.4f %8.4f | %8.4f %8.4f %8.4f\n",
			r.Name, r.Conv[0], r.Conv[1], r.Conv[2], r.Full[0], r.Full[1], r.Full[2])
	}
	return b.String()
}

// RenderConflicts prints the §2.1 conflict measurement.
func RenderConflicts(rows []ConflictRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Conflict rate: reliability-preferred phase vs conventional completion (paper §2.1: ~30%%)\n")
	fmt.Fprintf(&b, "%-9s %12s %10s %10s\n", "Name", "rankableDCs", "conflicts", "%%")
	total, conf := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %12d %10d %10.1f\n", r.Name, r.RankableDCs, r.Conflicts, r.ConflictPct)
		total += r.RankableDCs
		conf += r.Conflicts
	}
	if total > 0 {
		fmt.Fprintf(&b, "%-9s %12d %10d %10.1f\n", "Overall", total, conf,
			100*float64(conf)/float64(total))
	}
	return b.String()
}

// RenderQuality prints the espresso-vs-exact audit.
func RenderQuality(rows []QualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A6: espresso vs exact minimization (8-input, 40%% DC synthetics)\n")
	fmt.Fprintf(&b, "%6s %8s | %9s %9s %8s | %9s %9s\n", "C^f", "samples",
		"heur cub", "exact cub", "worstGap", "heur lit", "exact lit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.2f %8d | %9d %9d %8d | %9d %9d\n",
			r.TargetCf, r.Samples, r.HeurCubes, r.ExactCubes, r.WorstGap,
			r.HeurLits, r.ExactLits)
	}
	return b.String()
}

// RenderNodal prints the §4 nodal-decomposition extension results.
func RenderNodal(rows []NodalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A3: nodal decomposition — internal DC reassignment (k=%d)\n", NodalK)
	fmt.Fprintf(&b, "%-9s %6s | %9s %9s %7s | %9s %9s %7s | %8s %8s %8s\n",
		"Name", "nodes", "out conv", "out LCF", "imp %",
		"in conv", "in LCF", "imp %", "conv lit", "LCF lit", "DCs set")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %6d | %9.4f %9.4f %7.1f | %9.4f %9.4f %7.1f | %8d %8d %8d\n",
			r.Name, r.Nodes, r.ConvRate, r.ReassignRate, r.ImprovementPct,
			r.ConvInputRate, r.ReassignInputRate, r.InputImprovementPct,
			r.ConvLiterals, r.ReassignLits, r.DCsAssigned)
	}
	return b.String()
}
