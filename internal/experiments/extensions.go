package experiments

import (
	"context"

	"relsyn/internal/benchmarks"
	"relsyn/internal/core"
	"relsyn/internal/espresso"
	"relsyn/internal/exact"
	"relsyn/internal/faultsim"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/synthetic"
)

// FaultRow reports gate-level stuck-at fault statistics (extension A4)
// for the conventional and LC^f-assigned implementations of one
// benchmark: does input-DC reliability assignment also shift internal
// fault masking?
type FaultRow struct {
	Name                string
	ConvGates, LCFGates int
	ConvObs, LCFObs     float64 // mean stuck-at observability (lower = more masking)
	ConvUndet, LCFUndet int
}

// Faults runs exhaustive stuck-at analysis on the named benchmarks
// (defaults to the small suite members).
func Faults(names []string, threshold float64) ([]FaultRow, error) {
	if len(names) == 0 {
		names = []string{"bench", "fout", "p3", "exam"}
	}
	rows := make([]FaultRow, len(names))
	err := parallelFor(len(names), func(i int) error {
		spec, err := benchmarks.Load(names[i])
		if err != nil {
			return err
		}
		row := FaultRow{Name: names[i]}
		for _, lcf := range []bool{false, true} {
			f := spec
			if lcf {
				res, err := core.LCF(spec, threshold, core.Options{})
				if err != nil {
					return err
				}
				f = res.Func
			}
			sres, err := synth.Synthesize(f, synth.Options{Objective: synth.OptimizePower})
			if err != nil {
				return err
			}
			rep, err := faultsim.Analyze(sres.Netlist, spec.NumIn)
			if err != nil {
				return err
			}
			if lcf {
				row.LCFGates = sres.Metrics.Gates
				row.LCFObs = rep.MeanObservability
				row.LCFUndet = rep.Undetectable
			} else {
				row.ConvGates = sres.Metrics.Gates
				row.ConvObs = rep.MeanObservability
				row.ConvUndet = rep.Undetectable
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// ConflictRow measures the paper's §2.1 observation that
// "reliability-driven DC assignment typically conflicted with
// conventional DC assignment for around 30% of minterms": among DC
// minterms with a clear majority-phase preference, how often does the
// conventional (area-driven) completion choose the other phase?
type ConflictRow struct {
	Name        string
	RankableDCs int     // DC minterms with a non-tied preference
	Conflicts   int     // conventional completion disagrees
	ConflictPct float64 // 100·Conflicts/RankableDCs
}

// Conflicts runs the measurement across the whole suite.
func Conflicts() ([]ConflictRow, error) {
	specs := benchmarks.Specs()
	rows := make([]ConflictRow, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		spec, err := benchmarks.Load(specs[i].Name)
		if err != nil {
			return err
		}
		conv, err := synth.Synthesize(spec, synth.Options{Objective: synth.OptimizePower})
		if err != nil {
			return err
		}
		reliable := core.Complete(spec)
		row := ConflictRow{Name: specs[i].Name}
		for _, a := range reliable.Assigned {
			if a.Weight == 0 {
				continue // tie: no reliability preference
			}
			row.RankableDCs++
			if conv.Impl.Phase(a.Output, a.Minterm) != a.Value {
				row.Conflicts++
			}
		}
		if row.RankableDCs > 0 {
			row.ConflictPct = 100 * float64(row.Conflicts) / float64(row.RankableDCs)
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// QualityRow compares the heuristic espresso engine against the exact
// Quine-McCluskey/branch-and-bound minimizer on one function class
// (extension A6) — the quality audit of the substrate the whole
// evaluation rests on.
type QualityRow struct {
	TargetCf              float64
	Samples               int
	HeurCubes, ExactCubes int
	HeurLits, ExactLits   int
	WorstGap              int // largest per-function cube-count gap
}

// Quality sweeps complexity-factor classes and measures both minimizers
// on 7-input, 40%-DC synthetics. Samples whose exact covering problem
// exceeds the branch-and-bound budget (low-C^f functions have huge
// cyclic prime cores) are skipped; Samples counts the solved ones.
func Quality(samplesPerClass int, seed int64) ([]QualityRow, error) {
	classes := []float64{0.35, 0.5, 0.65, 0.8}
	rows := make([]QualityRow, len(classes))
	err := parallelFor(len(classes), func(ci int) error {
		row := QualityRow{TargetCf: classes[ci]}
		for s := 0; s < samplesPerClass; s++ {
			f, err := synthetic.Generate(synthetic.Params{
				Inputs: 7, Outputs: 1, DCFraction: 0.4,
				TargetCf: classes[ci], Tolerance: 0.02,
				Seed: seed + int64(ci*1000+s), BestEffort: true,
			})
			if err != nil {
				return err
			}
			heur := espresso.Minimize(f.OnCover(0), f.DCCover(0))
			ex, err := exact.Minimize(f, 0, exact.Limits{MaxNodes: 1 << 24})
			if err != nil {
				continue // intractable exact instance; skip the sample
			}
			row.Samples++
			row.HeurCubes += heur.Len()
			row.ExactCubes += ex.Len()
			row.HeurLits += heur.LiteralCount()
			row.ExactLits += ex.LiteralCount()
			if gap := heur.Len() - ex.Len(); gap > row.WorstGap {
				row.WorstGap = gap
			}
		}
		rows[ci] = row
		return nil
	})
	return rows, err
}

// MultiBitRow quantifies the k-bit input-error tail (extension A5): the
// paper's single-bit model is justified when pin errors are rare and
// independent; these exact rates show how masking behaves for k = 1..3
// under conventional vs complete reliability assignment.
type MultiBitRow struct {
	Name       string
	Conv, Full [3]float64 // index k-1 → k-bit error rate
}

// MultiBit measures exact k-bit error rates for k = 1..3 on the named
// benchmarks.
func MultiBit(names []string) ([]MultiBitRow, error) {
	if len(names) == 0 {
		names = []string{"bench", "fout", "p3", "exam"}
	}
	rows := make([]MultiBitRow, len(names))
	err := parallelFor(len(names), func(i int) error {
		spec, err := benchmarks.Load(names[i])
		if err != nil {
			return err
		}
		conv, err := synth.Synthesize(spec, synth.Options{Objective: synth.OptimizePower})
		if err != nil {
			return err
		}
		full, err := synth.Synthesize(core.Complete(spec).Func,
			synth.Options{Objective: synth.OptimizePower})
		if err != nil {
			return err
		}
		row := MultiBitRow{Name: names[i]}
		ctx := context.Background()
		for k := 1; k <= 3; k++ {
			if row.Conv[k-1], err = reliability.ErrorRateMultiMean(ctx, spec, conv.Impl, k); err != nil {
				return err
			}
			if row.Full[k-1], err = reliability.ErrorRateMultiMean(ctx, spec, full.Impl, k); err != nil {
				return err
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}
