// Package flight coalesces concurrent work by key — the singleflight
// pattern, adapted to handle-based jobs. Unlike the classic
// call-and-block singleflight, Do never waits for the work to finish: it
// returns a shared handle (the leader's V) immediately, so both
// synchronous waiters and fire-and-forget submitters can join the same
// in-flight job. The owner removes the key with Forget once the job's
// result has been published (e.g. to a cache), closing the window in
// which duplicates could start redundant work.
package flight

import "sync"

// Group tracks in-flight values by key. The zero value is ready to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]V
}

// Do returns the in-flight value for key, starting one with start() if
// none exists. started reports whether this call created the value
// (i.e. the caller is the leader); joiners get started == false. If
// start fails, nothing is registered and the error is returned.
//
// start runs under the group lock: it must be fast (allocate a handle,
// enqueue) and must not call back into the Group.
func (g *Group[V]) Do(key string, start func() (V, error)) (v V, started bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]V)
	}
	if v, ok := g.m[key]; ok {
		return v, false, nil
	}
	v, err = start()
	if err != nil {
		var zero V
		return zero, false, err
	}
	g.m[key] = v
	return v, true, nil
}

// Get returns the in-flight value for key, if any.
func (g *Group[V]) Get(key string) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.m[key]
	return v, ok
}

// Forget removes key so the next Do starts fresh work. Publish the
// result (cache insert) before forgetting to avoid duplicate recompute.
func (g *Group[V]) Forget(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.m, key)
}

// Len returns the number of in-flight keys.
func (g *Group[V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
