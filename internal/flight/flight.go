// Package flight coalesces concurrent work by key — the singleflight
// pattern, adapted to handle-based jobs. Unlike the classic
// call-and-block singleflight, Do never waits for the work to finish: it
// returns a shared handle (the leader's V) immediately, so both
// synchronous waiters and fire-and-forget submitters can join the same
// in-flight job. The owner removes the key with Forget once the job's
// result has been published (e.g. to a cache), closing the window in
// which duplicates could start redundant work.
package flight

import (
	"sync"

	"relsyn/internal/obs"
)

// Group tracks in-flight values by key. The zero value is ready to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]V

	// started counts leader Do calls; coalesced counts joiners. Always
	// live (zero-value counters); Instrument exports them.
	started, coalesced obs.Counter
}

// Instrument exports the group's counters and in-flight key gauge on
// reg, labeled group=name: relsyn_flight_{started,coalesced}_total and
// relsyn_flight_inflight_keys.
func (g *Group[V]) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	l := obs.L("group", name)
	reg.SetHelp("relsyn_flight_started_total", "Singleflight executions started (leaders).")
	reg.SetHelp("relsyn_flight_coalesced_total", "Singleflight joins onto an in-flight key.")
	reg.SetHelp("relsyn_flight_inflight_keys", "Currently tracked in-flight keys.")
	reg.RegisterCounter("relsyn_flight_started_total", &g.started, l)
	reg.RegisterCounter("relsyn_flight_coalesced_total", &g.coalesced, l)
	reg.GaugeFunc("relsyn_flight_inflight_keys", func() float64 { return float64(g.Len()) }, l)
}

// Stats is a snapshot of the group counters.
type Stats struct {
	Started   int64 `json:"started"`
	Coalesced int64 `json:"coalesced"`
	InFlight  int   `json:"in_flight"`
}

// Stats snapshots the leader/joiner counters and in-flight key count.
func (g *Group[V]) Stats() Stats {
	return Stats{
		Started:   g.started.Value(),
		Coalesced: g.coalesced.Value(),
		InFlight:  g.Len(),
	}
}

// Do returns the in-flight value for key, starting one with start() if
// none exists. started reports whether this call created the value
// (i.e. the caller is the leader); joiners get started == false. If
// start fails, nothing is registered and the error is returned.
//
// start runs under the group lock: it must be fast (allocate a handle,
// enqueue) and must not call back into the Group.
func (g *Group[V]) Do(key string, start func() (V, error)) (v V, started bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]V)
	}
	if v, ok := g.m[key]; ok {
		g.coalesced.Inc()
		return v, false, nil
	}
	v, err = start()
	if err != nil {
		var zero V
		return zero, false, err
	}
	g.m[key] = v
	g.started.Inc()
	return v, true, nil
}

// Get returns the in-flight value for key, if any.
func (g *Group[V]) Get(key string) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.m[key]
	return v, ok
}

// Forget removes key so the next Do starts fresh work. Publish the
// result (cache insert) before forgetting to avoid duplicate recompute.
func (g *Group[V]) Forget(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.m, key)
}

// Len returns the number of in-flight keys.
func (g *Group[V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
