package flight

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLeaderAndJoiners(t *testing.T) {
	var g Group[*int]
	x := 42
	v, started, err := g.Do("k", func() (*int, error) { return &x, nil })
	if err != nil || !started || v != &x {
		t.Fatalf("leader: %v %v %v", v, started, err)
	}
	v2, started2, err := g.Do("k", func() (*int, error) {
		t.Fatal("start called for joiner")
		return nil, nil
	})
	if err != nil || started2 || v2 != &x {
		t.Fatalf("joiner: %v %v %v", v2, started2, err)
	}
	if g.Len() != 1 {
		t.Fatalf("len %d", g.Len())
	}
}

func TestStartErrorRegistersNothing(t *testing.T) {
	var g Group[*int]
	boom := errors.New("boom")
	_, started, err := g.Do("k", func() (*int, error) { return nil, boom })
	if !errors.Is(err, boom) || started {
		t.Fatalf("%v %v", started, err)
	}
	if _, ok := g.Get("k"); ok {
		t.Fatal("failed start registered a value")
	}
	// Next Do becomes the leader.
	x := 1
	_, started, err = g.Do("k", func() (*int, error) { return &x, nil })
	if err != nil || !started {
		t.Fatalf("retry: %v %v", started, err)
	}
}

func TestForget(t *testing.T) {
	var g Group[int]
	g.Do("k", func() (int, error) { return 1, nil })
	g.Forget("k")
	if g.Len() != 0 {
		t.Fatalf("len %d", g.Len())
	}
	_, started, _ := g.Do("k", func() (int, error) { return 2, nil })
	if !started {
		t.Fatal("Do after Forget did not start fresh work")
	}
}

// Exactly one leader per key under concurrency; everyone shares the
// leader's handle.
func TestConcurrentSingleLeader(t *testing.T) {
	var g Group[*atomic.Int64]
	const keys, goroutines = 4, 32
	var starts [keys]atomic.Int64
	var wg sync.WaitGroup
	handles := make([][]*atomic.Int64, keys)
	var mu sync.Mutex
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := i % keys
			v, _, err := g.Do(fmt.Sprintf("key%d", k), func() (*atomic.Int64, error) {
				starts[k].Add(1)
				return &atomic.Int64{}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			handles[k] = append(handles[k], v)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if starts[k].Load() != 1 {
			t.Fatalf("key %d started %d times", k, starts[k].Load())
		}
		for _, h := range handles[k] {
			if h != handles[k][0] {
				t.Fatalf("key %d handles diverge", k)
			}
		}
	}
	if g.Len() != keys {
		t.Fatalf("len %d, want %d", g.Len(), keys)
	}
}
