package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicAddGet(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("len %d cap %d", c.Len(), c.Cap())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a")    // a is now MRU
	c.Add("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a wrongly evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // refresh value + recency, no eviction
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	c.Add("c", 3) // evicts b, not a
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	if !c.Remove("a") {
		t.Fatal("remove miss")
	}
	if c.Remove("a") {
		t.Fatal("double remove hit")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key hit")
	}
}

func TestZeroCapacityDisabled(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatalf("len %d cap %d", c.Len(), c.Cap())
	}
	neg := New[string, int](-5)
	neg.Add("a", 1)
	if neg.Cap() != 0 || neg.Len() != 0 {
		t.Fatal("negative capacity not clamped to disabled")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%48)
				c.Add(k, i)
				c.Get(k)
				if i%17 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
