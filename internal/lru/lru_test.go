package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicAddGet(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("len %d cap %d", c.Len(), c.Cap())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a")    // a is now MRU
	c.Add("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a wrongly evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // refresh value + recency, no eviction
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	c.Add("c", 3) // evicts b, not a
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	if !c.Remove("a") {
		t.Fatal("remove miss")
	}
	if c.Remove("a") {
		t.Fatal("double remove hit")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key hit")
	}
}

func TestZeroCapacityDisabled(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatalf("len %d cap %d", c.Len(), c.Cap())
	}
	neg := New[string, int](-5)
	neg.Add("a", 1)
	if neg.Cap() != 0 || neg.Len() != 0 {
		t.Fatal("negative capacity not clamped to disabled")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%48)
				c.Add(k, i)
				c.Get(k)
				if i%17 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}

// TestSizedEvictsOnByteBudget is the census-blob accounting regression:
// entries carrying large attached payloads must be bounded by the byte
// budget, not just the entry count, and the resident total must never
// exceed the configured cap.
func TestSizedEvictsOnByteBudget(t *testing.T) {
	type blob struct{ bytes int }
	c := NewSized[string, blob](100, 1000, func(b blob) int { return b.bytes })
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("k%d", i), blob{bytes: 300})
		if got := c.Bytes(); got > 1000 {
			t.Fatalf("after add %d: resident %d bytes exceeds 1000-byte cap", i, got)
		}
	}
	// 300-byte blobs under a 1000-byte budget: exactly three fit, even
	// though the entry cap (100) would admit all ten.
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3 (byte budget, not entry cap, must bind)", c.Len())
	}
	for _, k := range []string{"k7", "k8", "k9"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("most recent entry %s missing", k)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted by byte pressure")
	}
	if c.Stats().Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", c.Stats().Evictions)
	}
}

// TestSizedRefreshAndRemoveAccounting pins the bookkeeping on the
// non-insert paths: refreshing a key re-charges its new size, Remove
// credits it back.
func TestSizedRefreshAndRemoveAccounting(t *testing.T) {
	c := NewSized[string, int](10, 100, func(v int) int { return v })
	c.Add("a", 40)
	c.Add("b", 40)
	c.Add("a", 10) // refresh smaller
	if got := c.Bytes(); got != 50 {
		t.Fatalf("bytes = %d after refresh, want 50", got)
	}
	c.Add("b", 95) // refresh larger: 10+95 > 100, must evict LRU (a)
	if got := c.Bytes(); got != 95 {
		t.Fatalf("bytes = %d after oversize refresh, want 95", got)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted when b grew")
	}
	c.Remove("b")
	if got := c.Bytes(); got != 0 {
		t.Fatalf("bytes = %d after remove, want 0", got)
	}
}

// TestSizedOversizeValueNotPinned: a single value bigger than the whole
// byte budget must not stay resident over the cap.
func TestSizedOversizeValueNotPinned(t *testing.T) {
	c := NewSized[string, int](10, 100, func(v int) int { return v })
	c.Add("big", 500)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversize value pinned: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}
