// Package lru is a small, thread-safe, generic LRU cache used for
// content-addressed synthesis results (internal/server): keys are
// canonical content hashes, values are serializable job results. A
// capacity of zero disables the cache entirely (every Get misses, Add is
// a no-op), which keeps call sites free of nil checks.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity least-recently-used map.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most capacity entries. capacity <= 0
// yields a disabled cache.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes k -> v, evicting the least recently used
// entry when over capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Remove deletes k, reporting whether it was present.
func (c *Cache[K, V]) Remove(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, k)
	return true
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }
