// Package lru is a small, thread-safe, generic LRU cache used for
// content-addressed synthesis results (internal/server): keys are
// canonical content hashes, values are serializable job results. A
// capacity of zero disables the cache entirely (every Get misses, Add is
// a no-op), which keeps call sites free of nil checks.
package lru

import (
	"container/list"
	"sync"

	"relsyn/internal/obs"
)

// Cache is a fixed-capacity least-recently-used map.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element

	// hit/miss/evict counters are always live (zero-value obs.Counter is
	// usable); Instrument additionally exports them on a registry.
	hits, misses, evictions obs.Counter
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most capacity entries. capacity <= 0
// yields a disabled cache.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Instrument exports the cache's counters and occupancy on reg, labeled
// cache=name: relsyn_cache_{hits,misses,evictions}_total and the
// relsyn_cache_entries / relsyn_cache_capacity gauges. Call once, before
// the cache is shared.
func (c *Cache[K, V]) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	l := obs.L("cache", name)
	reg.SetHelp("relsyn_cache_hits_total", "Cache lookups served from the cache.")
	reg.SetHelp("relsyn_cache_misses_total", "Cache lookups that missed.")
	reg.SetHelp("relsyn_cache_evictions_total", "Entries evicted by capacity pressure.")
	reg.SetHelp("relsyn_cache_entries", "Current cache occupancy.")
	reg.SetHelp("relsyn_cache_capacity", "Configured cache capacity.")
	reg.RegisterCounter("relsyn_cache_hits_total", &c.hits, l)
	reg.RegisterCounter("relsyn_cache_misses_total", &c.misses, l)
	reg.RegisterCounter("relsyn_cache_evictions_total", &c.evictions, l)
	reg.GaugeFunc("relsyn_cache_entries", func() float64 { return float64(c.Len()) }, l)
	reg.GaugeFunc("relsyn_cache_capacity", func() float64 { return float64(c.cap) }, l)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// Stats snapshots the hit/miss/eviction counters and occupancy.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Len:       c.Len(),
		Cap:       c.cap,
	}
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// Add inserts or refreshes k -> v, evicting the least recently used
// entry when over capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		c.evictions.Inc()
	}
}

// Remove deletes k, reporting whether it was present.
func (c *Cache[K, V]) Remove(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, k)
	return true
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }
