// Package lru is a small, thread-safe, generic LRU cache used for
// content-addressed synthesis results (internal/server): keys are
// canonical content hashes, values are serializable job results. A
// capacity of zero disables the cache entirely (every Get misses, Add is
// a no-op), which keeps call sites free of nil checks.
package lru

import (
	"container/list"
	"sync"

	"relsyn/internal/obs"
)

// Cache is a fixed-capacity least-recently-used map.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element

	// Byte accounting (NewSized): size charges each value at Add time
	// and bytes tracks the resident total. The eviction loop keeps both
	// the entry count and the byte total within budget, so values with
	// large attached payloads (census blobs are two orders of magnitude
	// bigger than a job result) cannot blow past the configured cap by
	// riding an entry-count-only limit.
	maxBytes int64
	size     func(V) int
	bytes    int64

	// hit/miss/evict counters are always live (zero-value obs.Counter is
	// usable); Instrument additionally exports them on a registry.
	hits, misses, evictions obs.Counter
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// New returns a cache holding at most capacity entries. capacity <= 0
// yields a disabled cache.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// NewSized returns a cache bounded by both an entry count and a byte
// budget: size reports each value's resident bytes at insertion time
// and eviction runs until Σ size ≤ maxBytes (and the entry count is
// within capacity). The byte cap is strict — a value larger than the
// whole budget is evicted immediately rather than pinned — so the
// resident total never exceeds maxBytes. maxBytes <= 0 disables byte
// accounting; size must not be nil when maxBytes is positive.
func NewSized[K comparable, V any](capacity int, maxBytes int64, size func(V) int) *Cache[K, V] {
	c := New[K, V](capacity)
	if maxBytes > 0 {
		if size == nil {
			panic("lru: NewSized requires a size function")
		}
		c.maxBytes = maxBytes
		c.size = size
	}
	return c
}

// Instrument exports the cache's counters and occupancy on reg, labeled
// cache=name: relsyn_cache_{hits,misses,evictions}_total and the
// relsyn_cache_entries / relsyn_cache_capacity gauges. Call once, before
// the cache is shared.
func (c *Cache[K, V]) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	l := obs.L("cache", name)
	reg.SetHelp("relsyn_cache_hits_total", "Cache lookups served from the cache.")
	reg.SetHelp("relsyn_cache_misses_total", "Cache lookups that missed.")
	reg.SetHelp("relsyn_cache_evictions_total", "Entries evicted by capacity pressure.")
	reg.SetHelp("relsyn_cache_entries", "Current cache occupancy.")
	reg.SetHelp("relsyn_cache_capacity", "Configured cache capacity.")
	reg.RegisterCounter("relsyn_cache_hits_total", &c.hits, l)
	reg.RegisterCounter("relsyn_cache_misses_total", &c.misses, l)
	reg.RegisterCounter("relsyn_cache_evictions_total", &c.evictions, l)
	reg.GaugeFunc("relsyn_cache_entries", func() float64 { return float64(c.Len()) }, l)
	reg.GaugeFunc("relsyn_cache_capacity", func() float64 { return float64(c.cap) }, l)
	reg.SetHelp("relsyn_cache_bytes", "Resident bytes of cached values (0 unless the cache is byte-accounted).")
	reg.GaugeFunc("relsyn_cache_bytes", func() float64 { return float64(c.Bytes()) }, l)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
	Bytes     int64 `json:"bytes,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

// Stats snapshots the hit/miss/eviction counters and occupancy.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Len:       c.Len(),
		Cap:       c.cap,
		Bytes:     c.Bytes(),
		MaxBytes:  c.maxBytes,
	}
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// Add inserts or refreshes k -> v, evicting least recently used
// entries while either the entry count or the byte total is over
// budget.
func (c *Cache[K, V]) Add(k K, v V) {
	if c.cap == 0 {
		return
	}
	var sz int64
	if c.size != nil {
		sz = int64(c.size(v))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry[K, V])
		c.bytes += sz - e.size
		e.val, e.size = v, sz
		c.ll.MoveToFront(el)
		c.evictOver()
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v, size: sz})
	c.bytes += sz
	c.evictOver()
}

// evictOver drops LRU entries until both budgets hold. Called with the
// lock held. The loop may consume the entry just inserted (an oversized
// value evicts itself) — that keeps the byte bound strict instead of
// letting one huge blob pin the cache over its cap.
func (c *Cache[K, V]) evictOver() {
	for c.ll.Len() > 0 && (c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry[K, V])
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions.Inc()
	}
}

// Remove deletes k, reporting whether it was present.
func (c *Cache[K, V]) Remove(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	c.bytes -= el.Value.(*entry[K, V]).size
	delete(c.items, k)
	return true
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Bytes returns the resident byte total (0 unless byte-accounted).
func (c *Cache[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// MaxBytes returns the configured byte budget (0 = unaccounted).
func (c *Cache[K, V]) MaxBytes() int64 { return c.maxBytes }
