package factor

import (
	"sort"

	"relsyn/internal/cube"
)

// litOf encodes a literal as 2*var+1 for positive, 2*var for negative.
func litOf(v int, positive bool) int {
	l := 2 * v
	if positive {
		l++
	}
	return l
}

// litVal returns the cube.Literal a literal index binds.
func litVal(l int) (v int, val cube.Literal) {
	if l%2 == 1 {
		return l / 2, cube.One
	}
	return l / 2, cube.Zero
}

// litCounts tallies how many cubes of f contain each literal.
func litCounts(f *cube.Cover) []int {
	counts := make([]int, 2*f.NumVars())
	for _, c := range f.Cubes {
		for v := 0; v < f.NumVars(); v++ {
			switch c.Val(v) {
			case cube.One:
				counts[litOf(v, true)]++
			case cube.Zero:
				counts[litOf(v, false)]++
			}
		}
	}
	return counts
}

// cubeHasLit reports whether cube c contains literal l.
func cubeHasLit(c cube.Cube, l int) bool {
	v, val := litVal(l)
	return c.Val(v) == val
}

// divideByLit returns the quotient cover f / literal l: cubes containing
// l, with l removed.
func divideByLit(f *cube.Cover, l int) *cube.Cover {
	v, _ := litVal(l)
	q := cube.NewCover(f.NumVars())
	for _, c := range f.Cubes {
		if cubeHasLit(c, l) {
			q.Add(c.SetVal(v, cube.Full))
		}
	}
	return q
}

// divisible reports whether cube c contains every literal of cube d,
// i.e. d's literal set is a subset of c's (so c = (c/d)·d algebraically).
func divisible(c, d cube.Cube) bool {
	for v := 0; v < d.NumVars(); v++ {
		dv := d.Val(v)
		if dv != cube.Full && c.Val(v) != dv {
			return false
		}
	}
	return true
}

// removeLits returns c with all of d's literals raised to Full.
func removeLits(c, d cube.Cube) cube.Cube {
	for v := 0; v < d.NumVars(); v++ {
		if d.Val(v) != cube.Full {
			c = c.SetVal(v, cube.Full)
		}
	}
	return c
}

// mergeCubes returns the conjunction of two support-disjoint cubes.
func mergeCubes(a, b cube.Cube) cube.Cube {
	r, ok := a.Intersect(b)
	if !ok {
		// Algebraic products have disjoint supports, so this cannot happen
		// when called from Divide.
		panic("factor: merging conflicting cubes")
	}
	return r
}

// Divide performs algebraic (weak) division f / d, returning quotient and
// remainder covers such that f = q·d + r as cube sets, with q maximal.
func Divide(f, d *cube.Cover) (q, r *cube.Cover) {
	n := f.NumVars()
	if d.Len() == 0 {
		return cube.NewCover(n), f.Clone()
	}
	// Quotient: intersection over divisor cubes of {c/dc : dc ⊆ c}.
	var qset map[string]cube.Cube
	for i, dc := range d.Cubes {
		cur := map[string]cube.Cube{}
		for _, c := range f.Cubes {
			if divisible(c, dc) {
				rc := removeLits(c, dc)
				cur[rc.String()] = rc
			}
		}
		if i == 0 {
			qset = cur
		} else {
			for k := range qset {
				if _, ok := cur[k]; !ok {
					delete(qset, k)
				}
			}
		}
		if len(qset) == 0 {
			break
		}
	}
	q = cube.NewCover(n)
	keys := make([]string, 0, len(qset))
	for k := range qset {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		q.Add(qset[k])
	}
	// Remainder: cubes of f not produced by q·d.
	produced := map[string]bool{}
	for _, qc := range q.Cubes {
		for _, dc := range d.Cubes {
			produced[mergeCubes(qc, dc).String()] = true
		}
	}
	r = cube.NewCover(n)
	for _, c := range f.Cubes {
		if !produced[c.String()] {
			r.Add(c)
		}
	}
	return q, r
}

// largestCommonCube returns the cube of literals common to every cube of
// f (the universe cube if f is cube-free or empty).
func largestCommonCube(f *cube.Cover) cube.Cube {
	common := cube.New(f.NumVars())
	if f.Len() == 0 {
		return common
	}
	for v := 0; v < f.NumVars(); v++ {
		val := f.Cubes[0].Val(v)
		if val == cube.Full {
			continue
		}
		all := true
		for _, c := range f.Cubes[1:] {
			if c.Val(v) != val {
				all = false
				break
			}
		}
		if all {
			common = common.SetVal(v, val)
		}
	}
	return common
}

// makeCubeFree divides out the largest common cube.
func makeCubeFree(f *cube.Cover) *cube.Cover {
	cc := largestCommonCube(f)
	if cc.NumLiterals() == 0 {
		return f
	}
	out := cube.NewCover(f.NumVars())
	for _, c := range f.Cubes {
		out.Add(removeLits(c, cc))
	}
	return out
}

// isCubeFree reports whether no literal is shared by all cubes.
func isCubeFree(f *cube.Cover) bool {
	return f.Len() > 0 && largestCommonCube(f).NumLiterals() == 0
}

// Kernels enumerates the kernels of f (cube-free primary divisors) with
// Brayton's recursive algorithm, up to limit entries (0 = unlimited).
// The top-level cover itself is included when it is cube-free.
func Kernels(f *cube.Cover, limit int) []*cube.Cover {
	var out []*cube.Cover
	seen := map[string]bool{}
	add := func(k *cube.Cover) bool {
		kk := k.Clone()
		kk.Sort()
		key := kk.String()
		if seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, kk)
		return limit == 0 || len(out) < limit
	}
	var rec func(j int, g *cube.Cover) bool
	rec = func(j int, g *cube.Cover) bool {
		if isCubeFree(g) && g.Len() >= 2 {
			if !add(g) {
				return false
			}
		}
		counts := litCounts(g)
		for l := j; l < len(counts); l++ {
			if counts[l] < 2 {
				continue
			}
			d := makeCubeFree(divideByLit(g, l))
			// Skip if some earlier literal appears in every cube of d
			// (that kernel was or will be found via the earlier literal).
			dCounts := litCounts(d)
			dominated := false
			for k := 0; k < l; k++ {
				if dCounts[k] == d.Len() && d.Len() > 0 {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			if !rec(l+1, d) {
				return false
			}
		}
		return true
	}
	rec(0, makeCubeFree(f))
	return out
}

// GoodFactor produces a factored expression for the cover, recursively
// dividing by the best-value kernel; when no kernel helps, it falls back
// to most-frequent-literal (quick) factoring, and finally to flat SOP.
func GoodFactor(f *cube.Cover) *Expr {
	switch {
	case f.Len() == 0:
		return NewConst(false)
	case f.Len() == 1:
		return FromCube(f.Cubes[0])
	}
	for _, c := range f.Cubes {
		if c.NumLiterals() == 0 {
			return NewConst(true)
		}
	}

	// Try the best kernel divisor.
	if e := bestKernelFactor(f); e != nil {
		return e
	}

	// Quick factor on the most frequent literal.
	counts := litCounts(f)
	bestLit, bestCount := -1, 1
	for l, c := range counts {
		if c > bestCount {
			bestLit, bestCount = l, c
		}
	}
	if bestLit >= 0 {
		v, val := litVal(bestLit)
		d := cube.CoverOf(f.NumVars(), cube.New(f.NumVars()).SetVal(v, val))
		q, r := Divide(f, d)
		if q.Len() > 0 {
			lit := NewLit(v, val == cube.Zero)
			return NewOr(NewAnd(lit, GoodFactor(q)), GoodFactor(r))
		}
	}
	return SOP(f)
}

// bestKernelFactor returns the factoring of f by its best kernel, or nil
// if no kernel yields a literal saving.
func bestKernelFactor(f *cube.Cover) *Expr {
	const kernelCap = 64
	kernels := Kernels(f, kernelCap)
	type scored struct {
		k     *cube.Cover
		q     *cube.Cover
		r     *cube.Cover
		value int
	}
	var best *scored
	flatCost := f.LiteralCount()
	for _, k := range kernels {
		if k.Len() < 2 {
			continue
		}
		// Dividing f by itself gives the trivial factoring 1·f.
		q, r := Divide(f, k)
		if q.Len() == 0 || (q.Len() == 1 && q.Cubes[0].NumLiterals() == 0) {
			continue
		}
		cost := q.LiteralCount() + k.LiteralCount() + r.LiteralCount()
		value := flatCost - cost
		if value <= 0 {
			continue
		}
		if best == nil || value > best.value {
			best = &scored{k: k, q: q, r: r, value: value}
		}
	}
	if best == nil {
		return nil
	}
	return NewOr(NewAnd(GoodFactor(best.q), GoodFactor(best.k)), GoodFactor(best.r))
}
