// Package factor converts two-level covers (SOPs) into multi-level
// factored expressions via algebraic (weak) division and kernel
// extraction — the technology-independent restructuring step between
// espresso minimization and technology mapping, standing in for the
// factoring passes of SIS/Design Compiler.
package factor

import (
	"fmt"
	"strings"

	"relsyn/internal/cube"
)

// Kind discriminates expression nodes.
type Kind uint8

// Expression node kinds.
const (
	Const0 Kind = iota
	Const1
	Lit // a variable or its complement
	And // conjunction of Args
	Or  // disjunction of Args
)

// Expr is a factored Boolean expression tree.
type Expr struct {
	Kind Kind
	Var  int  // for Lit: variable index
	Neg  bool // for Lit: complemented
	Args []*Expr
}

// NewConst returns a constant expression.
func NewConst(v bool) *Expr {
	if v {
		return &Expr{Kind: Const1}
	}
	return &Expr{Kind: Const0}
}

// NewLit returns a literal expression.
func NewLit(v int, neg bool) *Expr { return &Expr{Kind: Lit, Var: v, Neg: neg} }

// NewAnd conjoins subexpressions, flattening nested Ands and applying
// constant rules.
func NewAnd(args ...*Expr) *Expr { return newNary(And, Const1, Const0, args) }

// NewOr disjoins subexpressions, flattening nested Ors and applying
// constant rules.
func NewOr(args ...*Expr) *Expr { return newNary(Or, Const0, Const1, args) }

func newNary(k Kind, identity, absorbing Kind, args []*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		switch {
		case a == nil || a.Kind == identity:
		case a.Kind == absorbing:
			return &Expr{Kind: absorbing}
		case a.Kind == k:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	switch len(flat) {
	case 0:
		return &Expr{Kind: identity}
	case 1:
		return flat[0]
	}
	return &Expr{Kind: k, Args: flat}
}

// NumLiterals counts literal leaves — the classic factored-form cost.
func (e *Expr) NumLiterals() int {
	switch e.Kind {
	case Lit:
		return 1
	case And, Or:
		n := 0
		for _, a := range e.Args {
			n += a.NumLiterals()
		}
		return n
	default:
		return 0
	}
}

// Eval evaluates the expression on a minterm (variable i is bit i).
func (e *Expr) Eval(minterm uint) bool {
	switch e.Kind {
	case Const0:
		return false
	case Const1:
		return true
	case Lit:
		v := minterm>>uint(e.Var)&1 == 1
		return v != e.Neg
	case And:
		for _, a := range e.Args {
			if !a.Eval(minterm) {
				return false
			}
		}
		return true
	case Or:
		for _, a := range e.Args {
			if a.Eval(minterm) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("factor: bad expr kind %d", e.Kind))
	}
}

// String renders the expression with x<i> variables, e.g.
// "x0 (x1' + x2) + x3".
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, false)
	return b.String()
}

func (e *Expr) write(b *strings.Builder, parenOr bool) {
	switch e.Kind {
	case Const0:
		b.WriteByte('0')
	case Const1:
		b.WriteByte('1')
	case Lit:
		fmt.Fprintf(b, "x%d", e.Var)
		if e.Neg {
			b.WriteByte('\'')
		}
	case And:
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(' ')
			}
			a.write(b, true)
		}
	case Or:
		if parenOr {
			b.WriteByte('(')
		}
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(" + ")
			}
			a.write(b, false)
		}
		if parenOr {
			b.WriteByte(')')
		}
	}
}

// FromCube renders a cube as an And of literals.
func FromCube(c cube.Cube) *Expr {
	var lits []*Expr
	for v := 0; v < c.NumVars(); v++ {
		switch c.Val(v) {
		case cube.One:
			lits = append(lits, NewLit(v, false))
		case cube.Zero:
			lits = append(lits, NewLit(v, true))
		case cube.Empty:
			return NewConst(false)
		}
	}
	return NewAnd(lits...)
}

// SOP renders a cover as the flat Or of its cube Ands (no factoring).
func SOP(cv *cube.Cover) *Expr {
	var terms []*Expr
	for _, c := range cv.Cubes {
		terms = append(terms, FromCube(c))
	}
	return NewOr(terms...)
}
