package factor

import (
	"math/rand"
	"testing"

	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/tt"
)

func mustParse(t *testing.T, s string) cube.Cube {
	t.Helper()
	c, err := cube.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func coverFrom(t *testing.T, n int, cubes ...string) *cube.Cover {
	t.Helper()
	cv := cube.NewCover(n)
	for _, s := range cubes {
		cv.Add(mustParse(t, s))
	}
	return cv
}

func equivalent(e *Expr, cv *cube.Cover) bool {
	for m := uint(0); m < 1<<uint(cv.NumVars()); m++ {
		if e.Eval(m) != cv.ContainsMinterm(m) {
			return false
		}
	}
	return true
}

func TestExprBasics(t *testing.T) {
	// (x0 ∧ ¬x1) ∨ x2
	e := NewOr(NewAnd(NewLit(0, false), NewLit(1, true)), NewLit(2, false))
	want := func(m uint) bool {
		x0 := m&1 == 1
		x1 := m>>1&1 == 1
		x2 := m>>2&1 == 1
		return (x0 && !x1) || x2
	}
	for m := uint(0); m < 8; m++ {
		if e.Eval(m) != want(m) {
			t.Fatalf("Eval(%03b) wrong", m)
		}
	}
	if e.NumLiterals() != 3 {
		t.Fatalf("NumLiterals = %d, want 3", e.NumLiterals())
	}
}

func TestNaryConstruction(t *testing.T) {
	// Identity and absorbing elements.
	if NewAnd().Kind != Const1 {
		t.Fatal("empty And should be 1")
	}
	if NewOr().Kind != Const0 {
		t.Fatal("empty Or should be 0")
	}
	if NewAnd(NewLit(0, false), NewConst(false)).Kind != Const0 {
		t.Fatal("And with 0 should be 0")
	}
	if NewOr(NewLit(0, false), NewConst(true)).Kind != Const1 {
		t.Fatal("Or with 1 should be 1")
	}
	// Flattening.
	e := NewAnd(NewAnd(NewLit(0, false), NewLit(1, false)), NewLit(2, false))
	if e.Kind != And || len(e.Args) != 3 {
		t.Fatalf("nested And not flattened: %s", e)
	}
	// Single argument collapses.
	if e := NewOr(NewLit(3, true)); e.Kind != Lit || e.Var != 3 {
		t.Fatal("single-arg Or should collapse to the literal")
	}
}

func TestExprString(t *testing.T) {
	e := NewOr(NewAnd(NewLit(0, false), NewLit(1, true)), NewLit(2, false))
	if got := e.String(); got != "x0 x1' + x2" {
		t.Fatalf("String = %q", got)
	}
}

func TestDivideByLiteralCover(t *testing.T) {
	// f = abc + abd + e ; divide by ab -> q = c + d, r = e.
	// Vars: a=0 b=1 c=2 d=3 e=4.
	f := coverFrom(t, 5, "111--", "11-1-", "----1")
	d := coverFrom(t, 5, "11---")
	q, r := Divide(f, d)
	if q.Len() != 2 || r.Len() != 1 {
		t.Fatalf("q=%d cubes r=%d cubes, want 2 and 1\nq:\n%s\nr:\n%s", q.Len(), r.Len(), q, r)
	}
	wantQ := map[string]bool{"--1--": true, "---1-": true}
	for _, c := range q.Cubes {
		if !wantQ[c.String()] {
			t.Fatalf("unexpected quotient cube %s", c)
		}
	}
	if r.Cubes[0].String() != "----1" {
		t.Fatalf("remainder = %s, want ----1", r.Cubes[0])
	}
}

func TestDivideByMultiCubeDivisor(t *testing.T) {
	// f = ac + ad + bc + bd + e ; d = a + b -> q = c + d, r = e.
	// Vars: a=0 b=1 c=2 d=3 e=4.
	f := coverFrom(t, 5, "1-1--", "1--1-", "-11--", "-1-1-", "----1")
	d := coverFrom(t, 5, "1----", "-1---")
	q, r := Divide(f, d)
	if q.Len() != 2 || r.Len() != 1 {
		t.Fatalf("q=%d r=%d, want 2 and 1", q.Len(), r.Len())
	}
}

func TestDivideNoCommon(t *testing.T) {
	f := coverFrom(t, 3, "1--", "-1-")
	d := coverFrom(t, 3, "--1")
	q, r := Divide(f, d)
	if q.Len() != 0 || r.Len() != 2 {
		t.Fatalf("q=%d r=%d, want 0 and 2", q.Len(), r.Len())
	}
}

// Algebraic identity: f == q·d + r for random covers and divisors.
func TestDivideIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(4)
		f := randomSparseCover(rng, n, 2+rng.Intn(8))
		d := randomSparseCover(rng, n, 1+rng.Intn(3))
		q, r := Divide(f, d)
		// Rebuild q·d + r and compare cube sets with f.
		rebuilt := map[string]bool{}
		for _, qc := range q.Cubes {
			for _, dc := range d.Cubes {
				m, ok := qc.Intersect(dc)
				if !ok {
					t.Fatal("algebraic product cube conflict")
				}
				rebuilt[m.String()] = true
			}
		}
		for _, c := range r.Cubes {
			rebuilt[c.String()] = true
		}
		orig := map[string]bool{}
		for _, c := range f.Cubes {
			orig[c.String()] = true
		}
		// Every rebuilt cube must be an original cube and vice versa.
		for k := range rebuilt {
			if !orig[k] {
				t.Fatalf("rebuilt cube %s not in f", k)
			}
		}
		for k := range orig {
			if !rebuilt[k] {
				t.Fatalf("original cube %s lost", k)
			}
		}
	}
}

func randomSparseCover(rng *rand.Rand, n, k int) *cube.Cover {
	cv := cube.NewCover(n)
	for i := 0; i < k; i++ {
		c := cube.New(n)
		lits := 1 + rng.Intn(n)
		for j := 0; j < lits; j++ {
			v := rng.Intn(n)
			if rng.Intn(2) == 0 {
				c = c.SetVal(v, cube.One)
			} else {
				c = c.SetVal(v, cube.Zero)
			}
		}
		cv.Add(c)
	}
	cv.RemoveContained()
	return cv
}

func TestKernelsTextbookExample(t *testing.T) {
	// f = adf + aef + bdf + bef + cdf + cef + g (textbook kernel example)
	// Vars: a..g = 0..6. Kernels include (a+b+c), (d+e), and the full
	// cube-free f itself: (a+b+c)(d+e)f + g.
	f := coverFrom(t, 7,
		"1--1-1-", // adf
		"1---11-", // aef
		"-1-1-1-", // bdf
		"-1--11-", // bef
		"--11-1-", // cdf
		"--1-11-", // cef
		"------1", // g
	)
	kernels := Kernels(f, 0)
	found := map[string]bool{}
	for _, k := range kernels {
		found[k.String()] = true
	}
	// (d+e) as cover string (sorted): cubes ---1--- and ----1--.
	de := coverFrom(t, 7, "---1---", "----1--")
	de.Sort()
	abc := coverFrom(t, 7, "1------", "-1-----", "--1----")
	abc.Sort()
	if !found[de.String()] {
		t.Errorf("kernel d+e not found; kernels:\n%v", found)
	}
	if !found[abc.String()] {
		t.Errorf("kernel a+b+c not found; kernels:\n%v", found)
	}
}

func TestKernelsCubeFreeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 30; trial++ {
		f := randomSparseCover(rng, 6, 2+rng.Intn(6))
		for _, k := range Kernels(f, 0) {
			if !isCubeFree(k) {
				t.Fatalf("non-cube-free kernel:\n%s", k)
			}
			if k.Len() < 2 {
				t.Fatalf("kernel with fewer than 2 cubes:\n%s", k)
			}
		}
	}
}

func TestKernelsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := randomSparseCover(rng, 8, 12)
	all := Kernels(f, 0)
	if len(all) > 3 {
		limited := Kernels(f, 3)
		if len(limited) != 3 {
			t.Fatalf("limit ignored: got %d kernels", len(limited))
		}
	}
}

func TestGoodFactorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		f := randomSparseCover(rng, n, 1+rng.Intn(10))
		e := GoodFactor(f)
		if !equivalent(e, f) {
			t.Fatalf("factored expression differs from cover\ncover:\n%s\nexpr: %s", f, e)
		}
	}
}

func TestGoodFactorSavesLiterals(t *testing.T) {
	// ab + ac + ad -> a(b+c+d): 6 literals down to 4.
	f := coverFrom(t, 4, "11--", "1-1-", "1--1")
	e := GoodFactor(f)
	if !equivalent(e, f) {
		t.Fatal("factored expression wrong")
	}
	if e.NumLiterals() > 4 {
		t.Fatalf("factoring saved nothing: %s (%d literals)", e, e.NumLiterals())
	}
}

func TestGoodFactorKernelCase(t *testing.T) {
	// (a+b)(c+d) + e: flat SOP has 9 literals, factored 5.
	f := coverFrom(t, 5, "1-1--", "1--1-", "-11--", "-1-1-", "----1")
	e := GoodFactor(f)
	if !equivalent(e, f) {
		t.Fatal("factored expression wrong")
	}
	if e.NumLiterals() > 5 {
		t.Fatalf("kernel factoring missed: %s (%d literals)", e, e.NumLiterals())
	}
}

func TestGoodFactorEdgeCases(t *testing.T) {
	if GoodFactor(cube.NewCover(3)).Kind != Const0 {
		t.Fatal("empty cover should factor to 0")
	}
	f := coverFrom(t, 3, "---")
	if GoodFactor(f).Kind != Const1 {
		t.Fatal("universe cover should factor to 1")
	}
	single := coverFrom(t, 3, "01-")
	e := GoodFactor(single)
	if !equivalent(e, single) || e.NumLiterals() != 2 {
		t.Fatalf("single cube factored wrong: %s", e)
	}
}

// End-to-end: minimize a random incompletely specified function, factor
// the result, and check the factored form is consistent with the spec.
func TestMinimizeThenFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		f := tt.New(n, 1)
		for m := 0; m < f.Size(); m++ {
			f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
		}
		cov := espresso.Minimize(f.OnCover(0), f.DCCover(0))
		e := GoodFactor(cov)
		for m := uint(0); m < uint(f.Size()); m++ {
			switch f.Phase(0, int(m)) {
			case tt.On:
				if !e.Eval(m) {
					t.Fatalf("factored form misses on-set minterm %d", m)
				}
			case tt.Off:
				if e.Eval(m) {
					t.Fatalf("factored form covers off-set minterm %d", m)
				}
			}
		}
		if e.NumLiterals() > cov.LiteralCount() {
			t.Fatalf("factoring increased literal count: %d > %d",
				e.NumLiterals(), cov.LiteralCount())
		}
	}
}

func BenchmarkGoodFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(86))
	f := randomSparseCover(rng, 10, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GoodFactor(f)
	}
}
