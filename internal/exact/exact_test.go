package exact

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/tt"
)

func randomFunction(rng *rand.Rand, n int, dcFrac float64) *tt.Function {
	f := tt.New(n, 1)
	for m := 0; m < f.Size(); m++ {
		r := rng.Float64()
		switch {
		case r < dcFrac:
			f.SetPhase(0, m, tt.DC)
		case r < dcFrac+(1-dcFrac)/2:
			f.SetPhase(0, m, tt.On)
		}
	}
	return f
}

func isPrime(f *tt.Function, c cube.Cube) bool {
	// c ⊆ on∪dc and no single-literal raise stays within on∪dc.
	within := true
	c.Minterms(func(m uint) {
		if f.Phase(0, int(m)) == tt.Off {
			within = false
		}
	})
	if !within {
		return false
	}
	for v := 0; v < f.NumIn; v++ {
		if c.Val(v) == cube.Full {
			continue
		}
		raised := c.SetVal(v, cube.Full)
		ok := true
		raised.Minterms(func(m uint) {
			if f.Phase(0, int(m)) == tt.Off {
				ok = false
			}
		})
		if ok {
			return false
		}
	}
	return true
}

func TestPrimesAreExactlyThePrimes(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		f := randomFunction(rng, n, 0.3)
		primes, err := Primes(f, 0, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range primes {
			if !isPrime(f, p) {
				t.Fatalf("returned cube %s is not prime", p)
			}
			if seen[p.String()] {
				t.Fatalf("duplicate prime %s", p)
			}
			seen[p.String()] = true
		}
		// Completeness: every prime found by brute force must be present.
		// Brute force: enumerate all cubes (3^n) and filter.
		var enumerate func(v int, c cube.Cube)
		enumerate = func(v int, c cube.Cube) {
			if v == n {
				if isPrime(f, c) && !seen[c.String()] {
					t.Fatalf("missing prime %s", c)
				}
				return
			}
			enumerate(v+1, c.SetVal(v, cube.Zero))
			enumerate(v+1, c.SetVal(v, cube.One))
			enumerate(v+1, c)
		}
		if f.Outs[0].On.Any() || f.Outs[0].DC.Any() {
			enumerate(0, cube.New(n))
		}
	}
}

func TestMinimizeKnownExactSizes(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		onset func(m int) bool
		want  int
	}{
		{"xor3", 3, func(m int) bool { return popcount(m)%2 == 1 }, 4},
		{"xor5", 5, func(m int) bool { return popcount(m)%2 == 1 }, 16},
		{"maj3", 3, func(m int) bool { return popcount(m) >= 2 }, 3},
		{"and5", 5, func(m int) bool { return m == 31 }, 1},
		{"const0", 3, func(m int) bool { return false }, 0},
	}
	for _, tc := range cases {
		f := tt.New(tc.n, 1)
		for m := 0; m < f.Size(); m++ {
			if tc.onset(m) {
				f.SetPhase(0, m, tt.On)
			}
		}
		cv, err := Minimize(f, 0, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if cv.Len() != tc.want {
			t.Errorf("%s: %d cubes, want %d\n%s", tc.name, cv.Len(), tc.want, cv)
		}
		// Validity.
		for m := 0; m < f.Size(); m++ {
			got := cv.ContainsMinterm(uint(m))
			if got != tc.onset(m) {
				t.Errorf("%s: wrong at minterm %d", tc.name, m)
			}
		}
	}
}

func TestMinimizeUsesDCs(t *testing.T) {
	f := tt.New(2, 1)
	f.SetPhase(0, 3, tt.On)
	f.SetPhase(0, 1, tt.DC)
	cv, err := Minimize(f, 0, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Len() != 1 || cv.Cubes[0].NumLiterals() != 1 {
		t.Fatalf("expected single 1-literal cube, got\n%s", cv)
	}
}

// The headline oracle property: espresso never beats exact, and on small
// random functions it should be close (within a small additive gap).
func TestEspressoCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	totalExact, totalHeur := 0, 0
	worstGap := 0
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		f := randomFunction(rng, n, 0.4)
		ex, err := Minimize(f, 0, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		heur := espresso.Minimize(f.OnCover(0), f.DCCover(0))
		if heur.Len() < ex.Len() {
			t.Fatalf("espresso (%d cubes) beat 'exact' (%d) — exact solver is wrong:\n%s",
				heur.Len(), ex.Len(), f.OnCover(0))
		}
		gap := heur.Len() - ex.Len()
		if gap > worstGap {
			worstGap = gap
		}
		totalExact += ex.Len()
		totalHeur += heur.Len()
	}
	if totalHeur > totalExact*115/100 {
		t.Errorf("espresso %d cubes vs exact %d (>15%% average gap)", totalHeur, totalExact)
	}
	t.Logf("espresso %d vs exact %d cubes; worst per-function gap %d",
		totalHeur, totalExact, worstGap)
}

func TestMinimizeLimitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	f := randomFunction(rng, 8, 0.5)
	if _, err := Minimize(f, 0, Limits{MaxPrimes: 5}); err == nil {
		t.Fatal("prime limit not enforced")
	}
	if _, err := Minimize(f, 0, Limits{MaxNodes: 3}); err == nil {
		t.Fatal("node limit not enforced")
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func BenchmarkExactMinimize7(b *testing.B) {
	rng := rand.New(rand.NewSource(164))
	f := randomFunction(rng, 7, 0.4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(f, 0, Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// The parallel adjacency merge must produce the exact same (sorted)
// prime list as the sequential path at every parallelism level.
func TestPrimesParallelMatchSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	rng := rand.New(rand.NewSource(77))
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		f := randomFunction(rng, 8, 0.3)
		seq, err := PrimesCtx(ctx, f, 0, Limits{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8, 0} {
			got, err := PrimesCtx(ctx, f, 0, Limits{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(seq) {
				t.Fatalf("p=%d: %d primes != sequential %d", p, len(got), len(seq))
			}
			for i := range got {
				if got[i].String() != seq[i].String() {
					t.Fatalf("p=%d: prime %d = %s != sequential %s", p, i, got[i], seq[i])
				}
			}
		}
	}
}

// A cancelled context aborts prime generation with ctx.Err().
func TestPrimesCancellation(t *testing.T) {
	f := randomFunction(rand.New(rand.NewSource(78)), 8, 0.3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrimesCtx(ctx, f, 0, Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPrimesKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		f := randomFunction(rng, n, 0.3)
		kp, err := primesKernel(ctx, f, 0, Limits{MaxPrimes: 20000, MaxNodes: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := PrimesScalarCtx(ctx, f, 0, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(kp) != len(sp) {
			t.Fatalf("trial %d (n=%d): kernel %d primes, scalar %d", trial, n, len(kp), len(sp))
		}
		for i := range kp {
			if kp[i].String() != sp[i].String() {
				t.Fatalf("trial %d (n=%d): prime %d: kernel %s, scalar %s", trial, n, i, kp[i], sp[i])
			}
		}
	}
}
