// Package exact is a Quine-McCluskey / branch-and-bound two-level
// minimizer: it computes all prime implicants of on∪dc and solves the
// covering problem exactly (minimum cube count, literal count as the
// tiebreak). It is exponential and intended for small functions
// (n ≲ 10); the repository uses it as a quality oracle for the heuristic
// espresso engine and for exact minimal-SOP data in the Fig. 2
// reproduction.
package exact

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"relsyn/internal/bitset"
	"relsyn/internal/cube"
	"relsyn/internal/par"
	"relsyn/internal/tt"
)

// Limits bound the search so callers get an error instead of a hang.
type Limits struct {
	MaxPrimes int // abort prime generation beyond this many (default 20000)
	MaxNodes  int // abort branch & bound beyond this many nodes (default 1 << 22)
	// Parallelism caps the worker count of the prime-generation adjacency
	// merge (0 = GOMAXPROCS, 1 = sequential). It never changes results:
	// the merge is a set union folded in deterministic group order.
	Parallelism int
}

func (l *Limits) defaults() {
	if l.MaxPrimes == 0 {
		l.MaxPrimes = 20000
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = 1 << 22
	}
}

// implicant is a (values, dcMask) pair: bit i of dcMask set means
// variable i is unbound; otherwise bit i of values gives the literal.
type implicant struct {
	values, mask uint32
}

func (im implicant) covers(m uint32) bool {
	return (m &^ im.mask) == im.values
}

func (im implicant) toCube(n int) cube.Cube {
	c := cube.New(n)
	for v := 0; v < n; v++ {
		if im.mask>>uint(v)&1 == 1 {
			continue
		}
		if im.values>>uint(v)&1 == 1 {
			c = c.SetVal(v, cube.One)
		} else {
			c = c.SetVal(v, cube.Zero)
		}
	}
	return c
}

// Primes returns every prime implicant of the function on∪dc, for a
// function given as a dense spec output, with full machine parallelism.
func Primes(f *tt.Function, o int, lim Limits) ([]cube.Cube, error) {
	return PrimesCtx(context.Background(), f, o, lim)
}

// mergeResult is the output of one popcount-group adjacency-merge task:
// the implicants produced by merging group pc with group pc+1 and the
// inputs consumed by at least one merge. Tasks write only their own
// slot; the fold into sets happens sequentially in group order, so the
// (sorted) prime list is identical at every parallelism level.
type mergeResult struct {
	merged []implicant
	used   []implicant
}

// kernelMaxInputs bounds the word-parallel merge: it represents each
// mask group as a dense 2^n-bit set, which is the winning trade for the
// small functions exact minimization targets (n ≲ 10) but would cost
// 2^n bits per live mask on adversarially large inputs. Above the bound
// PrimesCtx silently uses the scalar merge.
const kernelMaxInputs = 16

// PrimesCtx is Primes with cooperative cancellation and the parallelism
// cap taken from lim.Parallelism. It dispatches between the
// word-parallel mask-group merge and the scalar popcount-group merge on
// bitset.UseKernels; both produce the identical sorted prime list.
func PrimesCtx(ctx context.Context, f *tt.Function, o int, lim Limits) ([]cube.Cube, error) {
	lim.defaults()
	n := f.NumIn
	if n > 20 {
		return nil, fmt.Errorf("exact: %d inputs too large", n)
	}
	if bitset.UseKernels && n <= kernelMaxInputs {
		return primesKernel(ctx, f, o, lim)
	}
	return primesScalar(ctx, f, o, lim)
}

// PrimesScalarCtx is PrimesCtx pinned to the scalar popcount-group
// merge, for differential tests that cross-check the kernel path.
func PrimesScalarCtx(ctx context.Context, f *tt.Function, o int, lim Limits) ([]cube.Cube, error) {
	lim.defaults()
	n := f.NumIn
	if n > 20 {
		return nil, fmt.Errorf("exact: %d inputs too large", n)
	}
	return primesScalar(ctx, f, o, lim)
}

// primesScalar is the pre-kernel Quine-McCluskey merge: each level
// groups implicants by popcount of values and merges the per-popcount
// group pairs (pc, pc+1) concurrently — the pairs are independent, so
// they fan out through the shared work pool while the union of their
// results is folded deterministically.
func primesScalar(ctx context.Context, f *tt.Function, o int, lim Limits) ([]cube.Cube, error) {
	n := f.NumIn
	// Level 0: all care-1 minterms (on ∪ dc).
	cur := map[implicant]bool{}
	out := f.Outs[o]
	for m := 0; m < f.Size(); m++ {
		if out.On.Test(m) || out.DC.Test(m) {
			cur[implicant{values: uint32(m)}] = true
		}
	}
	var primes []implicant
	for len(cur) > 0 {
		// Group by popcount of values for the classic adjacency merge.
		groups := map[int][]implicant{}
		for im := range cur {
			groups[bits.OnesCount32(im.values)] = append(groups[bits.OnesCount32(im.values)], im)
		}
		// The (pc, pc+1) group pairs are independent merge tasks; run
		// them concurrently, each writing only results[i]. groups is
		// read-only during the fan-out.
		pcs := make([]int, 0, len(groups))
		for pc := range groups {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		results := make([]mergeResult, len(pcs))
		err := par.Do(ctx, lim.Parallelism, len(pcs), func(i int) error {
			g, next := groups[pcs[i]], groups[pcs[i]+1]
			var res mergeResult
			for _, a := range g {
				for _, b := range next {
					if a.mask != b.mask {
						continue
					}
					diff := a.values ^ b.values
					if bits.OnesCount32(diff) != 1 {
						continue
					}
					nm := implicant{values: a.values &^ diff, mask: a.mask | diff}
					res.merged = append(res.merged, nm)
					res.used = append(res.used, a, b)
				}
			}
			results[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		merged := map[implicant]bool{}
		used := map[implicant]bool{}
		for _, res := range results {
			for _, im := range res.merged {
				merged[im] = true
			}
			for _, im := range res.used {
				used[im] = true
			}
		}
		for im := range cur {
			if !used[im] {
				primes = append(primes, im)
				if len(primes) > lim.MaxPrimes {
					return nil, fmt.Errorf("exact: more than %d primes", lim.MaxPrimes)
				}
			}
		}
		cur = merged
	}
	return sortedCubes(primes, n, lim)
}

// sortedCubes canonicalizes a prime list: sorted by (mask, values) so
// the output is identical regardless of which merge produced it.
func sortedCubes(primes []implicant, n int, lim Limits) ([]cube.Cube, error) {
	if len(primes) > lim.MaxPrimes {
		return nil, fmt.Errorf("exact: more than %d primes", lim.MaxPrimes)
	}
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].mask != primes[j].mask {
			return primes[i].mask < primes[j].mask
		}
		return primes[i].values < primes[j].values
	})
	cubes := make([]cube.Cube, len(primes))
	for i, im := range primes {
		cubes[i] = im.toCube(n)
	}
	return cubes, nil
}

// maskedSet carries the merge output for one (source mask, merge bit)
// pair: the set of lower-endpoint values that merged, tagged with the
// widened mask they produce.
type maskedSet struct {
	mask uint32
	set  *bitset.Set
}

// maskMergeResult is one mask group's merge output: the merged
// lower-endpoint sets per widened mask and the union of every value
// consumed by at least one merge.
type maskMergeResult struct {
	merged []maskedSet
	used   *bitset.Set
}

// primesKernel is the word-parallel Quine-McCluskey merge. Implicants
// sharing a DC mask form one dense bitset S over the 2^n value space,
// and the classic adjacency merge along variable b becomes pure set
// algebra:
//
//	mergeable_b = S ∩ shift_b(S) ∩ {values with bit b = 0}
//	used_b      = mergeable_b ∪ shift_b(mergeable_b)
//
// — every (v, v|2^b) pair in S merges, 64 candidates per word op,
// instead of the scalar cross-product over popcount groups. Mask groups
// are independent, so they fan out through the shared work pool; the
// fold into the next level's groups runs sequentially in ascending mask
// order, and the final (mask, values) sort makes the output identical
// to the scalar merge at every parallelism level.
func primesKernel(ctx context.Context, f *tt.Function, o int, lim Limits) ([]cube.Cube, error) {
	n := f.NumIn
	size := f.Size()
	out := f.Outs[o]

	// Level 0: all care-1 minterms (on ∪ dc) under the empty mask.
	care := out.On.Union(out.DC)
	cur := map[uint32]*bitset.Set{}
	if care.Any() {
		cur[0] = care
	}
	// Half-plane masks: varPat[b] selects values whose bit b is 1.
	varPat := make([]*bitset.Set, n)
	for b := range varPat {
		varPat[b] = bitset.VarPattern(size, b)
	}

	var primes []implicant
	for len(cur) > 0 {
		masks := make([]uint32, 0, len(cur))
		for mask := range cur {
			masks = append(masks, mask)
		}
		sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })

		results := make([]maskMergeResult, len(masks))
		err := par.Do(ctx, lim.Parallelism, len(masks), func(i int) error {
			mask := masks[i]
			s := cur[mask]
			res := maskMergeResult{used: bitset.New(size)}
			for b := 0; b < n; b++ {
				if mask>>uint(b)&1 == 1 {
					continue
				}
				lower := s.Intersect(s.ShiftNeighbor(b))
				lower.InPlaceDifference(varPat[b])
				if lower.None() {
					continue
				}
				res.used.InPlaceUnion(lower)
				res.used.InPlaceUnion(lower.ShiftNeighbor(b))
				res.merged = append(res.merged, maskedSet{mask: mask | 1<<uint(b), set: lower})
			}
			results[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}

		next := map[uint32]*bitset.Set{}
		for i, mask := range masks {
			res := results[i]
			// Implicants untouched by any merge are prime at this level.
			rem := cur[mask].Difference(res.used)
			overflow := false
			rem.ForEach(func(v int) {
				primes = append(primes, implicant{values: uint32(v), mask: mask})
				if len(primes) > lim.MaxPrimes {
					overflow = true
				}
			})
			if overflow {
				return nil, fmt.Errorf("exact: more than %d primes", lim.MaxPrimes)
			}
			for _, ms := range res.merged {
				if ex, ok := next[ms.mask]; ok {
					ex.InPlaceUnion(ms.set)
				} else {
					next[ms.mask] = ms.set
				}
			}
		}
		cur = next
	}
	return sortedCubes(primes, n, lim)
}

// Minimize returns a minimum-cube-count cover of output o of f (ties
// broken toward fewer literals), using all primes of on∪dc and exact
// branch-and-bound covering of the on-set.
func Minimize(f *tt.Function, o int, lim Limits) (*cube.Cover, error) {
	lim.defaults()
	n := f.NumIn
	primeCubes, err := Primes(f, o, lim)
	if err != nil {
		return nil, err
	}
	onMin := f.Outs[o].On.Indices()
	if len(onMin) == 0 {
		return cube.NewCover(n), nil
	}

	// Covering matrix: rows = on-set minterms, cols = primes.
	rows := len(onMin)
	cols := len(primeCubes)
	coverRows := make([][]int, rows) // prime indices covering each minterm
	coveredBy := make([][]int, cols) // minterm row indices per prime
	for r, m := range onMin {
		for c, p := range primeCubes {
			if p.ContainsMinterm(uint(m)) {
				coverRows[r] = append(coverRows[r], c)
				coveredBy[c] = append(coveredBy[c], r)
			}
		}
		if len(coverRows[r]) == 0 {
			return nil, fmt.Errorf("exact: on-set minterm %d uncovered by primes", onMin[r])
		}
	}

	solver := &bnb{
		rows: rows, cols: cols,
		coverRows: coverRows, coveredBy: coveredBy,
		lits:     make([]int, cols),
		maxNodes: lim.MaxNodes,
	}
	for c, p := range primeCubes {
		solver.lits[c] = p.NumLiterals()
	}
	sel, err := solver.solve()
	if err != nil {
		return nil, err
	}
	cv := cube.NewCover(n)
	for _, c := range sel {
		cv.Add(primeCubes[c])
	}
	cv.Sort()
	return cv, nil
}

// bnb is an exact set-cover solver: essential extraction, greedy upper
// bound, and depth-first branch and bound with an independent-row lower
// bound. Cost order: (cube count, literal count).
type bnb struct {
	rows, cols int
	coverRows  [][]int
	coveredBy  [][]int
	lits       []int
	maxNodes   int
	nodes      int

	bestSel  []int
	bestCost [2]int // cubes, literals
}

func (s *bnb) solve() ([]int, error) {
	// Greedy initial solution for the upper bound.
	s.bestSel = s.greedy()
	s.bestCost = s.costOf(s.bestSel)

	uncovered := make([]bool, s.rows)
	for i := range uncovered {
		uncovered[i] = true
	}
	if err := s.search(nil, uncovered, s.rows); err != nil {
		return nil, err
	}
	sort.Ints(s.bestSel)
	return s.bestSel, nil
}

func (s *bnb) costOf(sel []int) [2]int {
	l := 0
	for _, c := range sel {
		l += s.lits[c]
	}
	return [2]int{len(sel), l}
}

func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func (s *bnb) greedy() []int {
	covered := make([]bool, s.rows)
	remaining := s.rows
	var sel []int
	for remaining > 0 {
		best, bestGain, bestLits := -1, -1, 0
		for c := 0; c < s.cols; c++ {
			gain := 0
			for _, r := range s.coveredBy[c] {
				if !covered[r] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && s.lits[c] < bestLits) {
				best, bestGain, bestLits = c, gain, s.lits[c]
			}
		}
		if bestGain <= 0 {
			break
		}
		sel = append(sel, best)
		for _, r := range s.coveredBy[best] {
			if !covered[r] {
				covered[r] = true
				remaining--
			}
		}
	}
	return sel
}

// lowerBound counts a set of pairwise "independent" uncovered rows (no
// shared covering prime): each needs its own cube.
func (s *bnb) lowerBound(uncovered []bool) int {
	blocked := make([]bool, s.cols)
	lb := 0
	for r := 0; r < s.rows; r++ {
		if !uncovered[r] {
			continue
		}
		free := true
		for _, c := range s.coverRows[r] {
			if blocked[c] {
				free = false
				break
			}
		}
		if free {
			lb++
			for _, c := range s.coverRows[r] {
				blocked[c] = true
			}
		}
	}
	return lb
}

func (s *bnb) search(sel []int, uncovered []bool, remaining int) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return fmt.Errorf("exact: branch-and-bound exceeded %d nodes", s.maxNodes)
	}
	if remaining == 0 {
		cost := s.costOf(sel)
		if less(cost, s.bestCost) {
			s.bestCost = cost
			s.bestSel = append([]int(nil), sel...)
		}
		return nil
	}
	if len(sel)+s.lowerBound(uncovered) > s.bestCost[0] {
		return nil
	}
	// Branch on the uncovered row with the fewest covering primes.
	bestRow, bestLen := -1, 1<<30
	for r := 0; r < s.rows; r++ {
		if uncovered[r] && len(s.coverRows[r]) < bestLen {
			bestRow, bestLen = r, len(s.coverRows[r])
		}
	}
	for _, c := range s.coverRows[bestRow] {
		var newly []int
		for _, r := range s.coveredBy[c] {
			if uncovered[r] {
				uncovered[r] = false
				newly = append(newly, r)
			}
		}
		if err := s.search(append(sel, c), uncovered, remaining-len(newly)); err != nil {
			return err
		}
		for _, r := range newly {
			uncovered[r] = true
		}
	}
	return nil
}
