package complexity

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"relsyn/internal/tt"
)

func randomFunction(rng *rand.Rand, n, m int) *tt.Function {
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			f.SetPhase(o, mm, tt.Phase(rng.Intn(3)))
		}
	}
	return f
}

// naiveSame is the direct O(n·2^n) reference implementation.
func naiveSame(f *tt.Function, o int) []int {
	same := make([]int, f.Size())
	for m := 0; m < f.Size(); m++ {
		for b := 0; b < f.NumIn; b++ {
			if f.Phase(o, m) == f.Phase(o, m^(1<<uint(b))) {
				same[m]++
			}
		}
	}
	return same
}

func TestSamePhaseNeighborsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 5, 6, 7, 9} {
		f := randomFunction(rng, n, 1)
		got := SamePhaseNeighbors(f, 0)
		want := naiveSame(f, 0)
		for m := range want {
			if got[m] != want[m] {
				t.Fatalf("n=%d minterm %d: got %d want %d", n, m, got[m], want[m])
			}
		}
	}
}

func TestFactorConstantFunction(t *testing.T) {
	// A constant function has complexity factor exactly 1 (paper §2.2).
	f := tt.New(5, 1)
	if got := Factor(f, 0); got != 1.0 {
		t.Fatalf("constant-0 C^f = %v, want 1", got)
	}
	for m := 0; m < 32; m++ {
		f.SetPhase(0, m, tt.On)
	}
	if got := Factor(f, 0); got != 1.0 {
		t.Fatalf("constant-1 C^f = %v, want 1", got)
	}
}

func TestFactorXOR(t *testing.T) {
	// A parity (XOR) function has complexity factor exactly 0: every
	// neighbor differs (paper §2.2).
	n := 6
	f := tt.New(n, 1)
	for m := 0; m < f.Size(); m++ {
		if popcount(m)%2 == 1 {
			f.SetPhase(0, m, tt.On)
		}
	}
	if got := Factor(f, 0); got != 0.0 {
		t.Fatalf("XOR C^f = %v, want 0", got)
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestFactorSingleVariable(t *testing.T) {
	// f = x0 on n=3: neighbors along x0 always differ; along x1, x2 always
	// agree. C^f = 2/3.
	f := tt.New(3, 1)
	for m := 0; m < 8; m++ {
		if m&1 == 1 {
			f.SetPhase(0, m, tt.On)
		}
	}
	if got, want := Factor(f, 0), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("C^f(x0) = %v, want %v", got, want)
	}
}

func TestFactorRange(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		f := randomFunction(rng, 7, 1)
		c := Factor(f, 0)
		if c < 0 || c > 1 {
			t.Fatalf("C^f = %v out of [0,1]", c)
		}
	}
}

func TestExpected(t *testing.T) {
	// Build a function with exact probabilities f0=1/2, f1=1/4, fdc=1/4.
	f := tt.New(4, 1)
	for m := 0; m < 4; m++ {
		f.SetPhase(0, m, tt.On)
	}
	for m := 4; m < 8; m++ {
		f.SetPhase(0, m, tt.DC)
	}
	want := 0.5*0.5 + 0.25*0.25 + 0.25*0.25
	if got := Expected(f, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[C^f] = %v, want %v", got, want)
	}
}

// For a fully random function, the sample C^f should approach E[C^f].
func TestFactorApproachesExpectedOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := tt.New(12, 1)
	for m := 0; m < f.Size(); m++ {
		f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
	}
	cf := Factor(f, 0)
	ecf := Expected(f, 0)
	if math.Abs(cf-ecf) > 0.02 {
		t.Fatalf("random function: C^f=%v vs E[C^f]=%v differ too much", cf, ecf)
	}
}

func naiveLocal(f *tt.Function, o, m int) float64 {
	n := f.NumIn
	count := 0
	for b := 0; b < n; b++ {
		xj := m ^ (1 << uint(b))
		for b2 := 0; b2 < n; b2++ {
			xk := xj ^ (1 << uint(b2))
			if f.Phase(o, xj) == f.Phase(o, xk) {
				count++
			}
		}
	}
	return float64(count) / float64(n*n)
}

func TestLocalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	f := randomFunction(rng, 6, 1)
	all := LocalAll(f, 0)
	for m := 0; m < f.Size(); m++ {
		want := naiveLocal(f, 0, m)
		if math.Abs(all[m]-want) > 1e-12 {
			t.Fatalf("LC^f(%d) = %v, want %v", m, all[m], want)
		}
		if got := Local(f, 0, m); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Local(%d) = %v, want %v", m, got, want)
		}
	}
}

func TestLocalConstantIsOne(t *testing.T) {
	f := tt.New(4, 1)
	all := LocalAll(f, 0)
	for m, v := range all {
		if v != 1.0 {
			t.Fatalf("constant function LC^f(%d) = %v, want 1", m, v)
		}
	}
}

// Mean of LC^f over all minterms relates to C^f: both average same-phase
// neighbor indicators, LC^f just re-weights by the neighborhood. For a
// vertex-transitive uniform function they agree exactly; in general the
// mean LC^f equals mean over minterms of (same-phase count of neighbors)/n,
// which equals C^f because every minterm appears as a neighbor exactly n
// times.
func TestMeanLocalEqualsFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		f := randomFunction(rng, 7, 1)
		all := LocalAll(f, 0)
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		mean := sum / float64(len(all))
		cf := Factor(f, 0)
		if math.Abs(mean-cf) > 1e-9 {
			t.Fatalf("mean LC^f = %v, C^f = %v", mean, cf)
		}
	}
}

func TestMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	f := randomFunction(rng, 5, 3)
	sum := 0.0
	for o := 0; o < 3; o++ {
		sum += Factor(f, o)
	}
	got, err := FactorMean(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-sum/3) > 1e-12 {
		t.Fatalf("FactorMean = %v, want %v", got, sum/3)
	}
	sum = 0.0
	for o := 0; o < 3; o++ {
		sum += Expected(f, o)
	}
	got, err = ExpectedMean(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-sum/3) > 1e-12 {
		t.Fatalf("ExpectedMean = %v, want %v", got, sum/3)
	}
}

// Regression: the mean helpers silently returned NaN on zero-output
// functions; they must now reject them with the typed sentinel.
func TestMeansZeroOutputsRejected(t *testing.T) {
	f := &tt.Function{NumIn: 4} // hand-built: no outputs
	if _, err := FactorMean(f); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("FactorMean: got %v, want tt.ErrZeroOutputs", err)
	}
	if _, err := ExpectedMean(f); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("ExpectedMean: got %v, want tt.ErrZeroOutputs", err)
	}
}

// withProcs raises GOMAXPROCS so the parallel path actually runs
// concurrently even on single-core machines.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// The parallel kernels must be bit-identical to the sequential path at
// every parallelism level.
func TestParallelMatchesSequential(t *testing.T) {
	withProcs(t, 8)
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for trial := 0; trial < 3; trial++ {
		f := randomFunction(rng, 7, 5)
		seqMean, err := FactorMeanCtx(ctx, f, 1)
		if err != nil {
			t.Fatal(err)
		}
		seqLocal, err := LocalAllCtx(ctx, f, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8, 0} {
			mean, err := FactorMeanCtx(ctx, f, p)
			if err != nil {
				t.Fatal(err)
			}
			if mean != seqMean {
				t.Fatalf("p=%d: FactorMean %v != sequential %v", p, mean, seqMean)
			}
			local, err := LocalAllCtx(ctx, f, 0, p)
			if err != nil {
				t.Fatal(err)
			}
			for m := range local {
				if local[m] != seqLocal[m] {
					t.Fatalf("p=%d: LocalAll[%d] %v != sequential %v", p, m, local[m], seqLocal[m])
				}
			}
		}
	}
}

// A cancelled context aborts the parallel kernels with ctx.Err().
func TestCancellationAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	f := randomFunction(rng, 6, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FactorMeanCtx(ctx, f, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("FactorMeanCtx: got %v, want context.Canceled", err)
	}
	if _, err := LocalAllCtx(ctx, f, 0, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("LocalAllCtx: got %v, want context.Canceled", err)
	}
}

func BenchmarkFactor12(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	f := randomFunction(rng, 12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Factor(f, 0)
	}
}

func BenchmarkLocalAll12(b *testing.B) {
	rng := rand.New(rand.NewSource(38))
	f := randomFunction(rng, 12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalAll(f, 0)
	}
}
