// Package complexity implements the Boolean complexity-factor metrics of
// the paper (§2.2 and §4).
//
// The (normalized) complexity factor of an n-input function f is
//
//	C^f = |{(x1,x2) : f(x1)=f(x2), D_H(x1,x2)=1}| / (n·2^n)
//
// counting ordered pairs of 1-Hamming neighbors that share a phase
// (on/off/DC). It is the probability that a random neighbor of a random
// minterm shares its phase; high C^f means a "simpler" function with a
// smaller minimal SOP (the counter-intuitive historical definition the
// paper inherits from Hurst/Miller/Muzio).
//
// The local complexity factor of a minterm x (paper §4) looks one more
// step out:
//
//	LC^f(x) = |{(xj,xk) : D_H(x,xj)=1, D_H(xj,xk)=1, f(xj)=f(xk)}| / n²
package complexity

import (
	"context"
	"fmt"
	"math/bits"

	"relsyn/internal/bitset"
	"relsyn/internal/par"
	"relsyn/internal/tt"
)

// checkOutputs rejects zero-output functions at the API boundary with
// the typed tt.ErrZeroOutputs sentinel (per-output means over zero
// outputs used to silently divide by zero and return NaN).
func checkOutputs(f *tt.Function) error {
	if f.NumOut() == 0 {
		return fmt.Errorf("complexity: %w", tt.ErrZeroOutputs)
	}
	return nil
}

// SamePhaseNeighbors returns, for every minterm m, the number of m's n
// 1-Hamming neighbors that share m's phase in output o. This is the O(n·2^n)
// scalar kernel shared by FactorScalar and Local, and the oracle the
// word-parallel census (samePhaseCounter) is tested against.
func SamePhaseNeighbors(f *tt.Function, o int) []int {
	n := f.NumIn
	size := f.Size()
	out := f.Outs[o]
	on, dc := out.On, out.DC

	same := make([]int, size)
	for b := 0; b < n; b++ {
		onSh := on.ShiftXor(b)
		dcSh := dc.ShiftXor(b)
		// A pair (m, m^2^b) shares phase iff both on, both dc, or both off.
		onW, dcW := on.Words(), dc.Words()
		onShW, dcShW := onSh.Words(), dcSh.Words()
		for wi := range onW {
			bothOn := onW[wi] & onShW[wi]
			bothDC := dcW[wi] & dcShW[wi]
			bothOff := ^(onW[wi] | dcW[wi]) & ^(onShW[wi] | dcShW[wi])
			match := bothOn | bothDC | bothOff
			base := wi * 64
			for match != 0 {
				idx := base + bits.TrailingZeros64(match)
				if idx < size {
					same[idx]++
				}
				match &= match - 1
			}
		}
	}
	return same
}

// samePhaseCounter is the word-parallel form of SamePhaseNeighbors: a
// bit-sliced counter holding, per minterm, the same-phase neighbor
// census. Per input bit it builds the match set
//
//	match_b = (on & sh_b(on)) | (dc & sh_b(dc)) | (off & sh_b(off))
//
// with three allocation-free neighbor shifts and one word pass, then
// ripple-adds it into the counter — 64 minterms per word op instead of
// a TrailingZeros walk over every set match bit.
func samePhaseCounter(f *tt.Function, o int) *bitset.Counter {
	n, size := f.NumIn, f.Size()
	out := f.Outs[o]
	on, dc := out.On, out.DC
	off := f.OffSet(o)
	maxVal := n
	if maxVal < 1 {
		maxVal = 1
	}
	c := bitset.NewCounter(size, maxVal)
	scratch := bitset.NewKernelScratch(size)
	match := scratch.Scratch(3)
	for b := 0; b < n; b++ {
		onSh := scratch.ShiftNeighbor(0, on, b)
		dcSh := scratch.ShiftNeighbor(1, dc, b)
		offSh := scratch.ShiftNeighbor(2, off, b)
		mw := match.Words()
		onW, dcW, offW := on.Words(), dc.Words(), off.Words()
		onShW, dcShW, offShW := onSh.Words(), dcSh.Words(), offSh.Words()
		for wi := range mw {
			mw[wi] = onW[wi]&onShW[wi] | dcW[wi]&dcShW[wi] | offW[wi]&offShW[wi]
		}
		match.Trim()
		c.Add(match)
	}
	return c
}

// Factor returns C^f for output o. It dispatches between the
// word-parallel kernel and the scalar oracle on bitset.UseKernels; the
// integer pair totals are identical either way, so the floats are too.
func Factor(f *tt.Function, o int) float64 {
	if bitset.UseKernels {
		return FactorKernel(f, o)
	}
	return FactorScalar(f, o)
}

// FactorScalar is the pre-kernel implementation and the testing oracle.
func FactorScalar(f *tt.Function, o int) float64 {
	same := SamePhaseNeighbors(f, o)
	total := 0
	for _, s := range same {
		total += s
	}
	return float64(total) / float64(f.NumIn*f.Size())
}

// FactorKernel computes the same-phase pair total as three fused
// shift+popcount passes per input bit — no per-minterm census at all.
func FactorKernel(f *tt.Function, o int) float64 {
	out := f.Outs[o]
	on, dc := out.On, out.DC
	off := f.OffSet(o)
	total := 0
	for b := 0; b < f.NumIn; b++ {
		total += on.ShiftAndPopcount(on, b) +
			dc.ShiftAndPopcount(dc, b) +
			off.ShiftAndPopcount(off, b)
	}
	return float64(total) / float64(f.NumIn*f.Size())
}

// FactorCensus is Factor served from a fused neighbor census
// (internal/census): the same-phase pair total is three masked plane
// sums over censuses that ranking, bounds and borders already share,
// instead of 3n fused shift passes of its own. Identical integer
// totals, identical float.
func FactorCensus(c *bitset.Census) float64 {
	return float64(c.SamePhasePairs()) / float64(c.K()*c.Len())
}

// FactorMean returns the mean C^f across all outputs — the per-benchmark
// figure reported in paper Table 1 — computed with full machine
// parallelism. Zero-output functions are rejected with an error wrapping
// tt.ErrZeroOutputs.
func FactorMean(f *tt.Function) (float64, error) {
	return FactorMeanCtx(context.Background(), f, 0)
}

// FactorMeanCtx is FactorMean with cooperative cancellation and an
// explicit parallelism cap (0 = GOMAXPROCS, 1 = sequential). Per-output
// factors are computed concurrently but accumulated in output order, so
// the result is bit-identical at every parallelism level.
func FactorMeanCtx(ctx context.Context, f *tt.Function, parallelism int) (float64, error) {
	if err := checkOutputs(f); err != nil {
		return 0, err
	}
	factors := make([]float64, f.NumOut())
	if err := par.Do(ctx, parallelism, f.NumOut(), func(o int) error {
		factors[o] = Factor(f, o)
		return nil
	}); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range factors {
		sum += v
	}
	return sum / float64(f.NumOut()), nil
}

// Expected returns E[C^f] for output o: the complexity factor a random
// function with the same signal probabilities would have,
// f0² + f1² + fDC² (paper §3.1).
func Expected(f *tt.Function, o int) float64 {
	f0, f1, fdc := f.SignalProbabilities(o)
	return f0*f0 + f1*f1 + fdc*fdc
}

// ExpectedMean returns the mean E[C^f] across outputs. Zero-output
// functions are rejected with an error wrapping tt.ErrZeroOutputs.
func ExpectedMean(f *tt.Function) (float64, error) {
	if err := checkOutputs(f); err != nil {
		return 0, err
	}
	sum := 0.0
	for o := range f.Outs {
		sum += Expected(f, o)
	}
	return sum / float64(f.NumOut()), nil
}

// Local returns LC^f for minterm m of output o.
func Local(f *tt.Function, o, m int) float64 {
	same := SamePhaseNeighbors(f, o)
	return localFrom(f, same, m)
}

// LocalAll returns LC^f for every minterm of output o in one pass —
// used by the complexity-factor-based assignment algorithm, which needs
// the value for every DC minterm.
func LocalAll(f *tt.Function, o int) []float64 {
	out, _ := LocalAllCtx(context.Background(), f, o, 1)
	return out
}

// localAllChunk is the minimum minterm-chunk size LocalAllCtx hands to
// one worker; below this the per-chunk dispatch overhead dominates the
// O(n) work per minterm.
const localAllChunk = 1024

// LocalAllCtx is LocalAll with cooperative cancellation and an explicit
// parallelism cap (0 = GOMAXPROCS, 1 = sequential). The minterm space is
// split into contiguous chunks and each worker writes only its own
// index range, so the result is bit-identical at every parallelism
// level. It dispatches between the word-parallel two-level census fold
// and the scalar oracle on bitset.UseKernels; both sum identical
// integers per minterm, so the floats are identical too.
func LocalAllCtx(ctx context.Context, f *tt.Function, o, parallelism int) ([]float64, error) {
	if bitset.UseKernels {
		return LocalAllKernelCtx(ctx, f, o, parallelism)
	}
	return LocalAllScalarCtx(ctx, f, o, parallelism)
}

// LocalAllKernelCtx is LocalAllCtx pinned to the word-parallel census
// fold, for callers that select the path per call (core.Options.Kernels)
// instead of through the process-wide switch. Zero-input functions fall
// back to the scalar path (the kernel fold needs at least one plane).
func LocalAllKernelCtx(ctx context.Context, f *tt.Function, o, parallelism int) ([]float64, error) {
	if f.NumIn == 0 {
		return LocalAllScalarCtx(ctx, f, o, parallelism)
	}
	return localAllKernel(ctx, f, o, parallelism)
}

// LocalAllCensusCtx is LocalAllKernelCtx served from a fused neighbor
// census: the census carries the two-step same-phase fold precomputed
// (bitset.Census.SamePhaseFold), so all that remains per call is the
// normalize. The fold sums the exact integers localAllKernel folds for
// itself — identical numerators, identical floats. Zero-input
// functions fall back to the scalar path, as does a nil census.
func LocalAllCensusCtx(ctx context.Context, f *tt.Function, o int, c *bitset.Census, parallelism int) ([]float64, error) {
	if f.NumIn == 0 || c == nil {
		return LocalAllKernelCtx(ctx, f, o, parallelism)
	}
	size := f.Size()
	vals := c.SamePhaseFold()
	out := make([]float64, size)
	norm := float64(f.NumIn * f.NumIn)
	err := par.DoRange(ctx, parallelism, size, localAllChunk, func(lo, hi int) error {
		for m := lo; m < hi; m++ {
			out[m] = float64(vals[m]) / norm
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LocalAllScalarCtx is LocalAllCtx pinned to the scalar oracle, for
// differential tests that cross-check the kernel path.
func LocalAllScalarCtx(ctx context.Context, f *tt.Function, o, parallelism int) ([]float64, error) {
	same := SamePhaseNeighbors(f, o)
	out := make([]float64, f.Size())
	err := par.DoRange(ctx, parallelism, f.Size(), localAllChunk, func(lo, hi int) error {
		for m := lo; m < hi; m++ {
			out[m] = localFrom(f, same, m)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// localAllKernel computes every LC^f numerator word-parallel: the
// same-phase census counter C is folded one more neighbor step into
//
//	L[m] = Σ_b C[m ^ 2^b]
//
// by ripple-adding each bit plane of C at its own weight
// (AddShiftedAtLevel), so the n² two-step pair count for all 2^n
// minterms costs n·log(n) plane passes instead of n·2^n array lookups.
func localAllKernel(ctx context.Context, f *tt.Function, o, parallelism int) ([]float64, error) {
	return localAllFold(ctx, f.NumIn, f.Size(), samePhaseCounter(f, o), parallelism)
}

// localAllFold is the shared second step of the kernel and census LC^f
// paths: fold a same-phase counter one neighbor step and normalize.
func localAllFold(ctx context.Context, n, size int, census *bitset.Counter, parallelism int) ([]float64, error) {
	fold := bitset.NewCounter(size, n*n)
	for b := 0; b < n; b++ {
		for p := 0; p < census.NumPlanes(); p++ {
			fold.AddShiftedAtLevel(census.Plane(p), b, p)
		}
	}
	out := make([]float64, size)
	norm := float64(n * n)
	// One streaming decode instead of a bounds-checked Get per minterm;
	// the division stays (no reciprocal multiply) so the floats remain
	// bit-identical to the scalar oracle at every n.
	vals := fold.ValuesInto(make([]int, size))
	err := par.DoRange(ctx, parallelism, size, localAllChunk, func(lo, hi int) error {
		for m := lo; m < hi; m++ {
			out[m] = float64(vals[m]) / norm
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func localFrom(f *tt.Function, same []int, m int) float64 {
	n := f.NumIn
	total := 0
	for b := 0; b < n; b++ {
		total += same[m^(1<<uint(b))]
	}
	return float64(total) / float64(n*n)
}
