package cec

import (
	"math/rand"
	"testing"

	"relsyn/internal/aig"
	"relsyn/internal/core"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

func randomFunction(rng *rand.Rand, n, m int, dcFrac float64) *tt.Function {
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			r := rng.Float64()
			switch {
			case r < dcFrac:
				f.SetPhase(o, mm, tt.DC)
			case r < dcFrac+(1-dcFrac)/2:
				f.SetPhase(o, mm, tt.On)
			}
		}
	}
	return f
}

func TestEquivalentRestructurings(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 6; trial++ {
		f := randomFunction(rng, 5+rng.Intn(3), 1+rng.Intn(3), 0)
		a, err := synth.Synthesize(f, synth.Options{Flow: synth.FlowSOP})
		if err != nil {
			t.Fatal(err)
		}
		b, err := synth.Synthesize(f, synth.Options{Flow: synth.FlowResyn})
		if err != nil {
			t.Fatal(err)
		}
		eq, cex, err := Check(a.Graph, b.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: equivalent flows reported different (cex %+v)", trial, cex)
		}
	}
}

func TestBalanceAndCleanupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 6, 60, 3)
		eq, _, err := Check(g, g.Balance())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatal("Balance broke equivalence (or cec is wrong)")
		}
		eq, _, err = Check(g, g.Cleanup())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatal("Cleanup broke equivalence (or cec is wrong)")
		}
	}
}

// Different DC assignments give inequivalent circuits; cec must find a
// concrete distinguishing input lying inside the original DC set.
func TestInequivalentWithCounterexample(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	found := 0
	for trial := 0; trial < 10 && found < 5; trial++ {
		f := randomFunction(rng, 6, 1, 0.5)
		conv, err := synth.Synthesize(f, synth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := synth.Synthesize(core.Complete(f).Func, synth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq, cex, err := Check(conv.Graph, comp.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			continue // assignments happened to coincide
		}
		found++
		// Validate the counterexample against both graphs directly.
		va := conv.Graph.Eval(cex.Minterm)[cex.Output]
		vb := comp.Graph.Eval(cex.Minterm)[cex.Output]
		if va == vb {
			t.Fatalf("counterexample %+v does not distinguish the circuits", cex)
		}
		// The distinguishing input must be a DC minterm of the spec.
		if f.Phase(cex.Output, int(cex.Minterm)) != tt.DC {
			t.Fatalf("counterexample %+v lies in the care set (both circuits implement f!)", cex)
		}
	}
	if found == 0 {
		t.Fatal("no inequivalent pair found in 10 trials (suspicious)")
	}
}

func TestCheckAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	for trial := 0; trial < 20; trial++ {
		g1 := randomGraph(rng, 5, 30, 2)
		var g2 *aig.Graph
		if rng.Intn(2) == 0 {
			g2 = g1.Balance() // equivalent
		} else {
			g2 = mutate(rng, g1) // possibly different
		}
		want := exhaustiveEqual(g1, g2)
		got, cex, err := Check(g1, g2)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: cec=%v exhaustive=%v", trial, got, want)
		}
		if !got {
			if g1.Eval(cex.Minterm)[cex.Output] == g2.Eval(cex.Minterm)[cex.Output] {
				t.Fatalf("trial %d: invalid counterexample", trial)
			}
		}
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a, b := aig.New(2), aig.New(3)
	a.AddPO(a.PI(0))
	b.AddPO(b.PI(0))
	if _, _, err := Check(a, b); err == nil {
		t.Fatal("interface mismatch accepted")
	}
}

func TestConstantOutputs(t *testing.T) {
	a, b := aig.New(2), aig.New(2)
	a.AddPO(aig.ConstTrue)
	b.AddPO(b.Or(b.PI(0), b.PI(0).Not())) // also constant true after strash
	eq, _, err := Check(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("two constant-true outputs reported different")
	}
	c := aig.New(2)
	c.AddPO(aig.ConstFalse)
	eq, cex, err := Check(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq || cex == nil {
		t.Fatal("constant true vs false reported equivalent")
	}
}

func exhaustiveEqual(a, b *aig.Graph) bool {
	for m := uint(0); m < 1<<uint(a.NumPI()); m++ {
		va, vb := a.Eval(m), b.Eval(m)
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

func randomGraph(rng *rand.Rand, numPI, ands, pos int) *aig.Graph {
	g := aig.New(numPI)
	lits := []aig.Lit{}
	for i := 0; i < numPI; i++ {
		lits = append(lits, g.PI(i))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		g.AddPO(l)
	}
	return g.Cleanup()
}

// mutate rebuilds g with one PO possibly complemented.
func mutate(rng *rand.Rand, g *aig.Graph) *aig.Graph {
	out := g.Cleanup()
	// Rebuild with a complemented PO by reconstructing: easiest is a new
	// graph that re-evaluates g and flips one output.
	h := aig.New(g.NumPI())
	mapped := make([]aig.Lit, 0, g.NumPO())
	// Copy structure via Eval-based truth tables is overkill; instead
	// re-add POs from out and flip one.
	for i := 0; i < out.NumPO(); i++ {
		mapped = append(mapped, out.PO(i))
	}
	flip := rng.Intn(len(mapped))
	rebuilt := rebuildInto(h, out)
	for i, l := range rebuilt {
		if i == flip {
			l = l.Not()
		}
		h.AddPO(l)
	}
	return h
}

// rebuildInto copies out's PO cones into h and returns the PO literals.
func rebuildInto(h *aig.Graph, src *aig.Graph) []aig.Lit {
	memo := map[int]aig.Lit{0: aig.ConstFalse}
	for i := 0; i < src.NumPI(); i++ {
		memo[1+i] = h.PI(i)
	}
	var rec func(n int) aig.Lit
	rec = func(n int) aig.Lit {
		if l, ok := memo[n]; ok {
			return l
		}
		f0, f1 := src.Fanins(n)
		a := rec(f0.Node())
		if f0.Compl() {
			a = a.Not()
		}
		b := rec(f1.Node())
		if f1.Compl() {
			b = b.Not()
		}
		l := h.And(a, b)
		memo[n] = l
		return l
	}
	var outs []aig.Lit
	for i := 0; i < src.NumPO(); i++ {
		po := src.PO(i)
		l := rec(po.Node())
		if po.Compl() {
			l = l.Not()
		}
		outs = append(outs, l)
	}
	return outs
}

func BenchmarkCheckEquivalent(b *testing.B) {
	rng := rand.New(rand.NewSource(225))
	f := randomFunction(rng, 8, 4, 0.3)
	x, err := synth.Synthesize(f, synth.Options{Flow: synth.FlowSOP})
	if err != nil {
		b.Fatal(err)
	}
	y, err := synth.Synthesize(f, synth.Options{Flow: synth.FlowResyn})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eq, _, err := Check(x.Graph, y.Graph); err != nil || !eq {
			b.Fatal("check failed")
		}
	}
}
