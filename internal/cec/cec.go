// Package cec performs combinational equivalence checking of AIGs by
// SAT on a miter: Tseitin-encode both graphs over shared primary-input
// variables, XOR corresponding outputs, and ask the solver for an input
// that distinguishes them. Unlike the exhaustive bit-parallel check used
// elsewhere in the repository, this scales past ~20 inputs, and it
// returns a concrete counterexample when the circuits differ.
package cec

import (
	"errors"
	"fmt"

	"relsyn/internal/aig"
	"relsyn/internal/sat"
)

// ErrUnknown is wrapped by errors returned when the SAT solver gives up
// (conflict budget exhausted or interrupted) before proving either
// equivalence or inequivalence. Callers may retry with a larger budget or
// fall back to exhaustive comparison (CheckExhaustive, n ≤ 16).
var ErrUnknown = errors.New("cec: solver verdict unknown")

// Options bounds the effort of a Check run.
type Options struct {
	// MaxConflicts caps the per-output SAT conflict budget
	// (<= 0: sat.DefaultMaxConflicts).
	MaxConflicts int64
	// Interrupt, when non-nil, is polled during the search; returning true
	// aborts the run with an ErrUnknown-wrapped error.
	Interrupt func() bool
}

// encoder Tseitin-encodes AIG nodes into solver variables.
type encoder struct {
	s       *sat.Solver
	next    *int
	inVars  []int       // solver var per primary input (shared)
	nodeVar map[int]int // AIG node -> solver var (per graph)
	g       *aig.Graph
}

func newEncoder(s *sat.Solver, next *int, inVars []int, g *aig.Graph) *encoder {
	return &encoder{s: s, next: next, inVars: inVars, nodeVar: map[int]int{}, g: g}
}

// litFor returns the solver literal for an AIG literal, encoding the
// node cone on demand. Constants are modeled with a dedicated variable
// pinned true (allocated lazily as inVars[...] style: we use variable 0
// semantics via a fixed constVar).
func (e *encoder) litFor(l aig.Lit, constTrue int) sat.Lit {
	node := l.Node()
	var v int
	switch {
	case node == 0:
		// Constant false node: its positive literal is ¬constTrue.
		if l.Compl() {
			return sat.MkLit(constTrue, false)
		}
		return sat.MkLit(constTrue, true)
	case node <= e.g.NumPI():
		v = e.inVars[node-1]
	default:
		var ok bool
		v, ok = e.nodeVar[node]
		if !ok {
			f0, f1 := e.g.Fanins(node)
			a := e.litFor(f0, constTrue)
			b := e.litFor(f1, constTrue)
			*e.next++
			v = *e.next
			e.nodeVar[node] = v
			out := sat.MkLit(v, false)
			// v ↔ a ∧ b
			e.s.AddClause(out.Not(), a)
			e.s.AddClause(out.Not(), b)
			e.s.AddClause(out, a.Not(), b.Not())
		}
	}
	return sat.MkLit(v, l.Compl())
}

// Counterexample is a distinguishing input assignment.
type Counterexample struct {
	Minterm uint // variable i is bit i (valid for ≤ 64 inputs)
	Output  int  // index of the differing output
}

// Check proves or refutes equivalence of two AIGs with identical
// interface sizes. It returns (true, nil) when equivalent, and
// (false, cex) with a concrete distinguishing input otherwise.
func Check(g1, g2 *aig.Graph) (bool, *Counterexample, error) {
	return CheckOpt(g1, g2, Options{})
}

// CheckOpt is Check under an explicit effort budget.
func CheckOpt(g1, g2 *aig.Graph, opt Options) (bool, *Counterexample, error) {
	if g1.NumPI() != g2.NumPI() || g1.NumPO() != g2.NumPO() {
		return false, nil, fmt.Errorf("cec: interface mismatch: %dx%d vs %dx%d",
			g1.NumPI(), g1.NumPO(), g2.NumPI(), g2.NumPO())
	}
	// Check outputs one at a time: separate miters keep learned clauses
	// local and give per-output counterexamples.
	for o := 0; o < g1.NumPO(); o++ {
		eq, cex, err := checkOutput(g1, g2, o, opt)
		if err != nil {
			return false, nil, err
		}
		if !eq {
			return false, cex, nil
		}
	}
	return true, nil, nil
}

// CheckExhaustive decides equivalence by bit-parallel truth-table
// comparison over all 2^n input vectors. It needs no SAT budget and its
// runtime is a predictable Θ(2^n · |AIG|), so it serves as the
// degradation target when the SAT verdict is Unknown; it requires
// n ≤ 16 inputs.
func CheckExhaustive(g1, g2 *aig.Graph) (bool, *Counterexample, error) {
	if g1.NumPI() != g2.NumPI() || g1.NumPO() != g2.NumPO() {
		return false, nil, fmt.Errorf("cec: interface mismatch: %dx%d vs %dx%d",
			g1.NumPI(), g1.NumPO(), g2.NumPI(), g2.NumPO())
	}
	if g1.NumPI() > 16 {
		return false, nil, fmt.Errorf("cec: exhaustive check limited to 16 inputs, got %d", g1.NumPI())
	}
	tts1 := g1.NodeTruthTables()
	tts2 := g2.NodeTruthTables()
	for o := 0; o < g1.NumPO(); o++ {
		t1 := g1.LitTable(tts1, g1.PO(o))
		t2 := g2.LitTable(tts2, g2.PO(o))
		diff := t1.Clone()
		diff.InPlaceSymDiff(t2)
		if diff.Any() {
			return false, &Counterexample{Minterm: uint(diff.NextSet(0)), Output: o}, nil
		}
	}
	return true, nil, nil
}

func checkOutput(g1, g2 *aig.Graph, o int, opt Options) (bool, *Counterexample, error) {
	numPI := g1.NumPI()
	// Variable budget: inputs + const + one per AND node + miter output.
	maxVars := numPI + 1 + g1.NumNodes() + g2.NumNodes() + 4
	s := sat.New(maxVars)
	s.SetMaxConflicts(opt.MaxConflicts)
	s.SetInterrupt(opt.Interrupt)
	next := 0
	alloc := func() int { next++; return next }
	inVars := make([]int, numPI)
	for i := range inVars {
		inVars[i] = alloc()
	}
	constTrue := alloc()
	s.AddClause(sat.MkLit(constTrue, false))

	e1 := newEncoder(s, &next, inVars, g1)
	e2 := newEncoder(s, &next, inVars, g2)
	l1 := e1.litFor(g1.PO(o), constTrue)
	l2 := e2.litFor(g2.PO(o), constTrue)

	// Miter: assert l1 ⊕ l2 via (l1 ∨ l2) ∧ (¬l1 ∨ ¬l2).
	s.AddClause(l1, l2)
	s.AddClause(l1.Not(), l2.Not())

	switch s.Solve() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, fmt.Errorf("%w (output %d)", ErrUnknown, o)
	}
	var m uint
	for i, v := range inVars {
		if s.Model(v) {
			m |= 1 << uint(i)
		}
	}
	return false, &Counterexample{Minterm: m, Output: o}, nil
}
