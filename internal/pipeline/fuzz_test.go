package pipeline_test

import (
	"context"
	"math/rand"
	"testing"

	"relsyn/internal/pipeline"
	"relsyn/internal/tt"
)

// FuzzSynthesize is the pipeline's headline property test: any seeded
// random incompletely specified function driven through assignment,
// synthesis, and verification must (a) never panic, (b) come back
// CEC-verified, and (c) yield an implementation consistent with the
// specification's care set. The fuzzer varies the function shape, the
// DC density, and the assignment method.
func FuzzSynthesize(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(1), uint8(128), uint8(0))
	f.Add(int64(2), uint8(5), uint8(2), uint8(60), uint8(1))
	f.Add(int64(3), uint8(6), uint8(3), uint8(200), uint8(2))
	f.Add(int64(4), uint8(7), uint8(1), uint8(255), uint8(3))
	f.Add(int64(5), uint8(2), uint8(2), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, dcRaw, methodRaw uint8) {
		n := 2 + int(nRaw)%6 // 2..7 inputs: full flow stays fast
		m := 1 + int(mRaw)%3 // 1..3 outputs
		dc := float64(dcRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		spec := tt.New(n, m)
		for o := 0; o < m; o++ {
			for mm := 0; mm < spec.Size(); mm++ {
				if rng.Float64() < dc {
					spec.SetPhase(o, mm, tt.DC)
				} else if rng.Intn(2) == 0 {
					spec.SetPhase(o, mm, tt.On)
				}
			}
		}
		opt := pipeline.Options{}
		switch methodRaw % 4 {
		case 0:
			opt.Assign.Method = pipeline.MethodNone
		case 1:
			opt.Assign = pipeline.AssignSpec{
				Method: pipeline.MethodRanking, Fraction: 0.5, UseBDD: true}
		case 2:
			opt.Assign = pipeline.AssignSpec{
				Method: pipeline.MethodLCF, Threshold: 0.55, UseBDD: true}
		case 3:
			opt.Assign.Method = pipeline.MethodComplete
		}
		res, err := pipeline.Run(context.Background(), spec, opt)
		if err != nil {
			t.Fatalf("pipeline failed on seed=%d n=%d m=%d dc=%.2f method=%d: %v",
				seed, n, m, dc, methodRaw%4, err)
		}
		if !res.Verified {
			t.Fatalf("result not verified (method %q)", res.VerifyMethod)
		}
		checkConsistent(t, spec, res)
	})
}
