// Package pipeline is the fault-tolerant staged runner for the full
// synthesis stack: reliability-driven DC assignment (internal/core), the
// synthesis flow (internal/synth), and independent verification
// (internal/cec), all under one context.Context and one resource Budget.
//
// The runner upholds three guarantees that the bare library calls do not:
//
//  1. No panics escape. Each stage attempt runs under panic recovery;
//     library panics surface as typed *StageError values.
//
//  2. Bounded effort. The Budget caps wall-clock time (deadline), BDD
//     manager nodes, SAT conflicts, and AIG nodes; every long-running
//     loop in the stack polls a context-derived interrupt, so cancelled
//     runs return promptly.
//
//  3. Degrade, don't die. When an attempt fails on a budget, a panic, or
//     an internal error, the runner walks an explicit degradation ladder
//     instead of failing the job:
//
//     assign: BDD set representation  -> dense truth-table path
//     synth:  resyn flow              -> sop flow
//     verify: SAT CEC                 -> exhaustive CEC (n <= 16)
//
//     Every fallback taken is recorded in Result.Fallbacks. Options.Strict
//     disables the ladder: the first failure is returned as-is. A
//     cancelled context never degrades — the caller asked to stop.
//
// The paper's own framing motivates this: LCF assignment is a knob that
// trades reliability for cost under a budget, and the SAT-based complete
// don't-care literature (Mishchenko & Brayton) keeps complete DC
// computation tractable with exactly this kind of conflict/resource
// limiting. The pipeline generalizes that discipline to the whole flow.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"relsyn/internal/aig"
	"relsyn/internal/bdd"
	"relsyn/internal/bitset"
	"relsyn/internal/cec"
	"relsyn/internal/core"
	"relsyn/internal/espresso"
	"relsyn/internal/factor"
	"relsyn/internal/obs"
	"relsyn/internal/sat"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

// init seeds the base observability series on the default registry so a
// freshly started service exposes the pipeline metric names (with zero
// values) before the first job runs — scrapers and the CI smoke test can
// rely on their presence.
func init() {
	obs.Default.SetHelp("relsyn_pipeline_runs_total", "Pipeline runs by terminal status.")
	obs.Default.SetHelp("relsyn_pipeline_fallbacks_total", "Degradation-ladder steps taken, by stage and rung.")
	obs.Default.SetHelp("relsyn_stage_attempts_total", "Stage-attempt executions, by stage and ladder rung.")
	obs.Default.SetHelp("relsyn_stage_failures_total", "Failed stage attempts, by stage, ladder rung, and reason class.")
	obs.Default.SetHelp("relsyn_stage_duration_seconds", "Per-stage-attempt wall-clock latency.")
	obs.Default.Counter("relsyn_pipeline_fallbacks_total")
	obs.Default.Counter("relsyn_pipeline_runs_total", obs.L("status", "ok"))
	obs.Default.Counter("relsyn_pipeline_runs_total", obs.L("status", "error"))
}

// Stage identifies one phase of the pipeline.
type Stage string

// Pipeline stages in execution order.
const (
	StageAssign Stage = "assign"
	StageSynth  Stage = "synth"
	StageVerify Stage = "verify"
)

// Reason classifies why a stage attempt failed.
type Reason string

// Failure reasons.
const (
	// ReasonPanic: a library panic was recovered at the stage boundary.
	ReasonPanic Reason = "panic"
	// ReasonBudget: a resource budget (BDD nodes, SAT conflicts, AIG
	// nodes, or an injected budget) was exhausted.
	ReasonBudget Reason = "budget"
	// ReasonCancel: the context was cancelled or its deadline passed.
	ReasonCancel Reason = "cancel"
	// ReasonError: any other failure (invariant violation, verification
	// mismatch, I/O, ...).
	ReasonError Reason = "error"
)

// ErrBudget is a generic budget-exhaustion sentinel. The fault-injection
// harness returns errors wrapping it; libraries use their own typed
// budget errors (bdd.LimitError, synth.ErrAIGBudget, cec.ErrUnknown),
// which the runner classifies identically.
var ErrBudget = errors.New("pipeline: budget exhausted")

// StageError is the typed failure the pipeline returns instead of
// panicking or hanging.
type StageError struct {
	// Stage is the pipeline phase that failed.
	Stage Stage
	// Attempt names the ladder rung that failed, e.g. "synth/resyn".
	Attempt string
	// Reason classifies the failure.
	Reason Reason
	// Err is the underlying error (for ReasonPanic, a synthesized error
	// carrying the panic value).
	Err error
	// Stack holds the goroutine stack for recovered panics, nil otherwise.
	Stack []byte
}

func (e *StageError) Error() string {
	return fmt.Sprintf("pipeline: stage %s (%s) failed [%s]: %v", e.Stage, e.Attempt, e.Reason, e.Err)
}

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// Retryable reports whether retrying with a larger budget (or without
// cancellation) could succeed. Panics and verification mismatches are
// not retryable; budget exhaustion and cancellation are.
func (e *StageError) Retryable() bool {
	return e.Reason == ReasonBudget || e.Reason == ReasonCancel
}

// Fallback records one degradation-ladder step the runner took.
type Fallback struct {
	Stage Stage
	// From and To name the failed and substituted attempts.
	From, To string
	// Cause is the failure that triggered the fallback.
	Cause *StageError
}

func (f Fallback) String() string {
	return fmt.Sprintf("%s: %s -> %s (%s)", f.Stage, f.From, f.To, f.Cause.Reason)
}

// Budget bounds the pipeline's resource consumption. Zero values mean
// "library default / unlimited".
type Budget struct {
	// Timeout is the wall-clock deadline for the whole run (0 = none).
	// It layers onto any deadline already carried by the context.
	Timeout time.Duration
	// MaxBDDNodes caps each BDD manager arena used by the BDD assignment
	// path (0 = unlimited).
	MaxBDDNodes int
	// MaxConflicts caps the per-output SAT conflict budget of the CEC
	// verification stage (0 = sat.DefaultMaxConflicts).
	MaxConflicts int64
	// MaxAIGNodes caps the optimized AIG size (0 = unlimited).
	MaxAIGNodes int
}

// AssignMethod selects the DC-assignment algorithm.
type AssignMethod string

// Assignment methods.
const (
	MethodNone     AssignMethod = "none"     // skip assignment
	MethodRanking  AssignMethod = "rank"     // paper Fig. 3
	MethodLCF      AssignMethod = "lcf"      // paper Fig. 7
	MethodComplete AssignMethod = "complete" // bind every DC
)

// AssignSpec configures the assignment stage.
type AssignSpec struct {
	Method    AssignMethod // default MethodNone
	Fraction  float64      // MethodRanking: fraction of ranked DCs in [0,1]
	Threshold float64      // MethodLCF: LC^f threshold in (0,1)
	// UseBDD prefers the BDD set-representation path; on BDD node-budget
	// exhaustion (or a panic) the runner falls back to the dense
	// truth-table path, which computes the identical result.
	UseBDD bool
	// AssignTies forwards core.Options.AssignTies.
	AssignTies bool
}

// Options configures Run.
type Options struct {
	// Assign configures the DC-assignment stage.
	Assign AssignSpec
	// Synth configures the synthesis stage. Interrupt and MaxAIGNodes are
	// overwritten by the runner from the context and Budget.
	Synth synth.Options
	// Budget bounds the run's resources.
	Budget Budget
	// Strict disables the degradation ladder: the first stage failure is
	// returned instead of degraded around.
	Strict bool
	// SkipVerify skips the CEC verification stage (the synthesis stage's
	// own care-set consistency check still runs).
	SkipVerify bool
	// Inject, when non-nil, is called at every stage-boundary attempt
	// with the attempt name ("assign/bdd", "synth/sop", ...). It may
	// panic or return an error (e.g. wrapping ErrBudget) to simulate
	// faults; see internal/faultinject. Production callers leave it nil.
	Inject func(point string) error
	// Metrics receives the runner's counters and latency histograms
	// (stage attempts/failures/durations, fallbacks, run outcomes).
	// Nil means obs.Default. Span tracing is orthogonal: it activates
	// when the context passed to Run carries obs.WithTrace.
	Metrics *obs.Registry
	// Parallelism caps the worker count of the per-output kernels in
	// the assignment and synthesis stages (0 = GOMAXPROCS, 1 =
	// sequential). It never changes results — the parallel paths are
	// bit-identical to the sequential ones — so it is a purely
	// operational knob and MUST stay out of cache keys (JobOptions.Key
	// strips it).
	Parallelism int
	// Kernels selects the word-parallel bitset kernels or the scalar
	// oracle implementations for the assignment stage's neighbor and
	// LC^f scans (default: follow the process-wide bitset.UseKernels
	// switch). Like Parallelism it never changes results — metatest
	// property 6 pins kernel ≡ scalar — so JobOptions.Key strips it.
	Kernels core.KernelMode
	// Census, when non-nil, supplies the shared per-output neighbor
	// censuses (internal/bitset.Census) for the assignment stage's
	// oracles; RunJob fills it from the internal/census engine. Like
	// Parallelism and Kernels it never changes results — metatest
	// property 7 pins fused ≡ unfused bit-identically — so it stays
	// out of cache keys.
	Census []*bitset.Census
}

// StageReport records one executed stage for observability.
type StageReport struct {
	Stage Stage
	// Attempts lists the ladder rungs tried, in order.
	Attempts []string
	// Took is the stage's wall-clock duration.
	Took time.Duration
}

// Result is a successful pipeline run.
type Result struct {
	// Assign is the assignment-pass outcome (nil with MethodNone).
	Assign *core.Result
	// Synth is the synthesized implementation; Synth.Impl is consistent
	// with the input function's care set.
	Synth *synth.Result
	// Verified reports that the verify stage proved Synth.Graph
	// equivalent to an independently constructed reference circuit.
	Verified bool
	// VerifyMethod is "sat" or "exhaustive" ("" when skipped).
	VerifyMethod string
	// Fallbacks lists every degradation-ladder step taken, in order.
	Fallbacks []Fallback
	// Stages reports per-stage attempts and timing.
	Stages []StageReport
	// Elapsed is the total wall-clock duration.
	Elapsed time.Duration
}

// Degraded reports whether any fallback fired.
func (r *Result) Degraded() bool { return len(r.Fallbacks) > 0 }

// runner threads shared state through the stages.
type runner struct {
	ctx  context.Context
	opt  Options
	res  *Result
	span *obs.Span // run-level trace span (nil when tracing is off)
}

// reg returns the runner's metrics registry.
func (r *runner) reg() *obs.Registry {
	if r.opt.Metrics != nil {
		return r.opt.Metrics
	}
	return obs.Default
}

// Run executes assignment, synthesis, and verification on f under opt.
// It returns the (possibly degraded) result, or the partial result plus
// a *StageError describing the first unrecoverable failure. It never
// panics on library faults and returns promptly once ctx is done.
func Run(ctx context.Context, f *tt.Function, opt Options) (*Result, error) {
	if f == nil {
		return nil, fmt.Errorf("pipeline: nil function")
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: invalid input: %w", err)
	}
	if err := validateAssign(opt.Assign); err != nil {
		return nil, err
	}
	if opt.Budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Budget.Timeout)
		defer cancel()
	}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "pipeline/run")
	span.SetAttr("method", string(opt.Assign.Method))
	if opt.Budget.Timeout > 0 {
		span.SetAttrf("budget_timeout_ms", "%d", opt.Budget.Timeout.Milliseconds())
	}
	r := &runner{ctx: ctx, opt: opt, res: &Result{}, span: span}
	defer func() { r.res.Elapsed = time.Since(start) }()
	serr := r.runStages(f)
	status := "ok"
	if serr != nil {
		status = "error"
		span.SetAttr("error", serr.Error())
	}
	r.reg().Counter("relsyn_pipeline_runs_total", obs.L("status", status)).Inc()
	span.SetAttrf("fallbacks", "%d", len(r.res.Fallbacks))
	span.End()
	if serr != nil {
		return r.res, serr
	}
	return r.res, nil
}

// runStages executes the three stages in order, stopping at the first
// unrecoverable failure.
func (r *runner) runStages(f *tt.Function) *StageError {
	if serr := r.runAssign(f); serr != nil {
		return serr
	}
	fa := f
	if r.res.Assign != nil {
		fa = r.res.Assign.Func
	}
	if serr := r.runSynth(fa); serr != nil {
		return serr
	}
	if !r.opt.SkipVerify {
		if serr := r.runVerify(); serr != nil {
			return serr
		}
	}
	return nil
}

func validateAssign(a AssignSpec) error {
	switch a.Method {
	case "", MethodNone, MethodComplete:
	case MethodRanking:
		if a.Fraction < 0 || a.Fraction > 1 {
			return fmt.Errorf("pipeline: ranking fraction %v outside [0,1]", a.Fraction)
		}
	case MethodLCF:
		if a.Threshold <= 0 || a.Threshold >= 1 {
			return fmt.Errorf("pipeline: LCF threshold %v outside (0,1)", a.Threshold)
		}
	default:
		return fmt.Errorf("pipeline: unknown assignment method %q", a.Method)
	}
	return nil
}

// interrupt returns a context-poll hook for the library Interrupt options.
func (r *runner) interrupt() error { return r.ctx.Err() }

// interruptBool adapts interrupt for the SAT solver's polling hook.
func (r *runner) interruptBool() bool { return r.ctx.Err() != nil }

// attempt runs fn for one ladder rung under panic recovery, firing the
// injection hook first, and classifies any failure into a *StageError.
// Every attempt is observable: one trace span ("stage/<rung>") plus a
// latency observation and attempt/failure counters labeled with the
// stage, the ladder rung, and (on failure) the StageError reason class.
func (r *runner) attempt(stage Stage, name string, fn func() error) (serr *StageError) {
	r.recordAttempt(stage, name)
	_, span := obs.StartSpan(r.ctx, "stage/"+name)
	began := time.Now()
	defer func() {
		if p := recover(); p != nil {
			serr = &StageError{
				Stage:   stage,
				Attempt: name,
				Reason:  ReasonPanic,
				Err:     fmt.Errorf("recovered panic: %v", p),
				Stack:   debug.Stack(),
			}
		}
		reg := r.reg()
		stageL, attemptL := obs.L("stage", string(stage)), obs.L("attempt", name)
		reg.Histogram("relsyn_stage_duration_seconds", stageL, attemptL).
			Observe(time.Since(began).Seconds())
		reg.Counter("relsyn_stage_attempts_total", stageL, attemptL).Inc()
		if serr != nil {
			reg.Counter("relsyn_stage_failures_total", stageL, attemptL,
				obs.L("reason", string(serr.Reason))).Inc()
			span.SetAttr("reason", string(serr.Reason))
			span.SetAttr("error", serr.Err.Error())
		}
		span.End()
	}()
	if err := r.ctx.Err(); err != nil {
		return r.classify(stage, name, err)
	}
	if r.opt.Inject != nil {
		if err := r.opt.Inject(name); err != nil {
			return r.classify(stage, name, err)
		}
	}
	if err := fn(); err != nil {
		return r.classify(stage, name, err)
	}
	return nil
}

// classify maps an error to a StageError with the right Reason.
func (r *runner) classify(stage Stage, name string, err error) *StageError {
	reason := ReasonError
	var limit *bdd.LimitError
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		reason = ReasonCancel
	case errors.Is(err, ErrBudget),
		errors.Is(err, synth.ErrAIGBudget),
		errors.Is(err, cec.ErrUnknown),
		errors.Is(err, sat.ErrBudget),
		errors.As(err, &limit):
		reason = ReasonBudget
	}
	return &StageError{Stage: stage, Attempt: name, Reason: reason, Err: err}
}

// degrade decides whether cause may be absorbed by stepping down to the
// rung named to. It returns nil (and records the fallback) when
// degradation is allowed, or the terminal error otherwise.
func (r *runner) degrade(cause *StageError, to string) *StageError {
	if r.opt.Strict || cause.Reason == ReasonCancel {
		return cause
	}
	r.res.Fallbacks = append(r.res.Fallbacks, Fallback{
		Stage: cause.Stage,
		From:  cause.Attempt,
		To:    to,
		Cause: cause,
	})
	r.reg().Counter("relsyn_pipeline_fallbacks_total",
		obs.L("stage", string(cause.Stage)),
		obs.L("from", cause.Attempt),
		obs.L("to", to)).Inc()
	// Record the degradation event on the run span so -trace output shows
	// which rung replaced which.
	r.span.SetAttrf("fallback/"+cause.Attempt, "-> %s (%s)", to, cause.Reason)
	return nil
}

func (r *runner) recordAttempt(stage Stage, name string) {
	n := len(r.res.Stages)
	if n == 0 || r.res.Stages[n-1].Stage != stage {
		r.res.Stages = append(r.res.Stages, StageReport{Stage: stage})
		n++
	}
	r.res.Stages[n-1].Attempts = append(r.res.Stages[n-1].Attempts, name)
}

func (r *runner) finishStage(stage Stage, began time.Time) {
	for i := range r.res.Stages {
		if r.res.Stages[i].Stage == stage {
			r.res.Stages[i].Took = time.Since(began)
		}
	}
}

// --- assign stage ---

func (r *runner) runAssign(f *tt.Function) *StageError {
	a := r.opt.Assign
	if a.Method == "" || a.Method == MethodNone {
		return nil
	}
	began := time.Now()
	defer r.finishStage(StageAssign, began)

	copt := core.Options{
		AssignTies:  a.AssignTies,
		Interrupt:   r.interrupt,
		MaxBDDNodes: r.opt.Budget.MaxBDDNodes,
		Parallelism: r.opt.Parallelism,
		Kernels:     r.opt.Kernels,
		Census:      r.opt.Census,
	}
	dense := func() error {
		var err error
		switch a.Method {
		case MethodRanking:
			r.res.Assign, err = core.Ranking(f, a.Fraction, copt)
		case MethodLCF:
			r.res.Assign, err = core.LCF(f, a.Threshold, copt)
		case MethodComplete:
			r.res.Assign = core.Complete(f)
		}
		return err
	}
	if a.UseBDD && a.Method != MethodComplete {
		serr := r.attempt(StageAssign, "assign/bdd", func() error {
			var err error
			switch a.Method {
			case MethodRanking:
				r.res.Assign, err = core.RankingBDD(f, a.Fraction, copt)
			case MethodLCF:
				r.res.Assign, err = core.LCFBDD(f, a.Threshold, copt)
			}
			return err
		})
		if serr == nil {
			return nil
		}
		if serr = r.degrade(serr, "assign/dense"); serr != nil {
			return serr
		}
	}
	return r.attempt(StageAssign, "assign/dense", dense)
}

// --- synth stage ---

func (r *runner) runSynth(fa *tt.Function) *StageError {
	began := time.Now()
	defer r.finishStage(StageSynth, began)

	sopt := r.opt.Synth
	sopt.Interrupt = r.interrupt
	sopt.MaxAIGNodes = r.opt.Budget.MaxAIGNodes
	sopt.Parallelism = r.opt.Parallelism

	runFlow := func(name string, flow synth.Flow) *StageError {
		return r.attempt(StageSynth, name, func() error {
			o := sopt
			o.Flow = flow
			res, err := synth.Synthesize(fa, o)
			if err != nil {
				return err
			}
			r.res.Synth = res
			return nil
		})
	}
	if sopt.Flow == synth.FlowResyn {
		serr := runFlow("synth/resyn", synth.FlowResyn)
		if serr == nil {
			return nil
		}
		if serr = r.degrade(serr, "synth/sop"); serr != nil {
			return serr
		}
	}
	return runFlow("synth/sop", synth.FlowSOP)
}

// --- verify stage ---

// runVerify independently re-derives a reference circuit from the
// implemented truth table (fresh two-level minimization, factoring, and
// AIG construction) and proves the optimized, mapped graph equivalent to
// it: first by SAT CEC under the conflict budget, then — when the SAT
// verdict is Unknown or the solver faults — by exhaustive bit-parallel
// CEC for n <= 16. A genuine mismatch is terminal: it is never degraded
// around, in strict mode or not.
func (r *runner) runVerify() *StageError {
	began := time.Now()
	defer r.finishStage(StageVerify, began)

	impl := r.res.Synth.Impl
	g := r.res.Synth.Graph
	var ref *aig.Graph
	buildRef := func() error {
		if ref != nil {
			return nil
		}
		ref = aig.New(impl.NumIn)
		for o := range impl.Outs {
			cov, err := espresso.MinimizeInterruptible(impl.OnCover(o), nil, r.interrupt)
			if err != nil {
				return err
			}
			ref.AddPO(ref.FromExpr(factor.GoodFactor(cov)))
		}
		ref = ref.Cleanup()
		return nil
	}

	serr := r.attempt(StageVerify, "verify/sat", func() error {
		if err := buildRef(); err != nil {
			return err
		}
		eq, cex, err := cec.CheckOpt(g, ref, cec.Options{
			MaxConflicts: r.opt.Budget.MaxConflicts,
			Interrupt:    r.interruptBool,
		})
		if err != nil {
			return err
		}
		if !eq {
			return mismatchError(cex)
		}
		r.res.Verified, r.res.VerifyMethod = true, "sat"
		return nil
	})
	if serr == nil {
		return nil
	}
	// Mismatches and other hard errors are terminal; only budget
	// exhaustion and solver faults may degrade to the exhaustive path.
	if serr.Reason != ReasonBudget && serr.Reason != ReasonPanic {
		return serr
	}
	if impl.NumIn > 16 {
		return serr
	}
	if serr = r.degrade(serr, "verify/exhaustive"); serr != nil {
		return serr
	}
	return r.attempt(StageVerify, "verify/exhaustive", func() error {
		if err := buildRef(); err != nil {
			return err
		}
		eq, cex, err := cec.CheckExhaustive(g, ref)
		if err != nil {
			return err
		}
		if !eq {
			return mismatchError(cex)
		}
		r.res.Verified, r.res.VerifyMethod = true, "exhaustive"
		return nil
	})
}

func mismatchError(cex *cec.Counterexample) error {
	return fmt.Errorf("verify: implementation differs from reference at minterm %d, output %d",
		cex.Minterm, cex.Output)
}
