//go:build race

package pipeline_test

import "time"

// latencySlack under the race detector: instrumentation slows the
// interrupt-poll hot loops by roughly an order of magnitude, so the
// cancellation bound is relaxed proportionally.
const latencySlack = 1 * time.Second
