// Job-shaped entry point: a fully serializable request/response pair
// around Run, shared by the relsyn CLI (-json) and the relsynd service.
//
// JobOptions is the wire form of Options — plain strings and numbers, no
// function hooks — with an explicit Normalize step that (a) fills
// defaults and (b) clears knobs that are meaningless for the selected
// method, so that semantically identical requests have byte-identical
// normalized forms. Key() hashes that normalized form; combined with the
// spec content hash (internal/pla.HashFunction) it is the cache /
// coalescing identity used by internal/server.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"relsyn/internal/bitset"
	"relsyn/internal/census"
	"relsyn/internal/core"
	"relsyn/internal/pla"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

// JobOptions is the serializable configuration of one synthesis job.
// The zero value normalizes to: no assignment, power objective, sop
// flow, no budgets, full verification.
type JobOptions struct {
	// Method selects DC assignment: "none", "rank", "lcf", or "complete".
	Method string `json:"method,omitempty"`
	// Fraction is the ranked-DC fraction in [0,1] (method "rank").
	Fraction float64 `json:"fraction,omitempty"`
	// Threshold is the LC^f threshold in (0,1) (method "lcf").
	Threshold float64 `json:"threshold,omitempty"`
	// UseBDD prefers the BDD assignment path (falls back to dense).
	UseBDD bool `json:"use_bdd,omitempty"`
	// AssignTies forwards core.Options.AssignTies.
	AssignTies bool `json:"assign_ties,omitempty"`
	// Objective is "delay", "power", or "area".
	Objective string `json:"objective,omitempty"`
	// Flow is "sop" or "resyn".
	Flow string `json:"flow,omitempty"`
	// Strict disables the degradation ladder.
	Strict bool `json:"strict,omitempty"`
	// SkipVerify skips the independent CEC stage.
	SkipVerify bool `json:"skip_verify,omitempty"`

	// TimeoutMs is the wall-clock budget in milliseconds (0 = none).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxBDDNodes caps each BDD manager arena (0 = unlimited).
	MaxBDDNodes int `json:"max_bdd_nodes,omitempty"`
	// MaxConflicts caps the SAT conflict budget (0 = default).
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// MaxAIGNodes caps the optimized AIG size (0 = unlimited).
	MaxAIGNodes int `json:"max_aig_nodes,omitempty"`

	// Parallelism caps the worker count of the per-output kernels
	// (0 = GOMAXPROCS, 1 = sequential). Purely operational: it never
	// changes results, so Key() strips it — two jobs differing only in
	// Parallelism share one cache entry.
	Parallelism int `json:"parallelism,omitempty"`

	// Kernels selects the analysis execution path: "" (process
	// default), "on" (word-parallel kernels), "off" (scalar oracles),
	// "fused" (kernels fed from the shared one-pass neighbor census,
	// cached per spec hash in internal/census), or "unfused" (kernels
	// with per-metric neighbor passes, the census engine bypassed).
	// Purely operational like Parallelism: every path computes
	// bit-identical results — metatest properties 6 and 7 pin the
	// equivalences — so Key() strips it and two jobs differing only in
	// Kernels share one cache entry.
	Kernels string `json:"kernels,omitempty"`

	// DCMode selects the internal don't-care extraction engine for
	// network (BLIF-input) jobs: "" (auto: exhaustive when the network
	// is small enough, windowed-SAT otherwise), "exhaustive" (complete
	// DCs by bit-parallel simulation, NumPI <= 16), or "windowed-sat"
	// (per-node TFI/TFO windows + SAT enumeration, any size). Unlike
	// Parallelism/Kernels this changes the computed DC sets — windowed
	// DCs are a subset of complete DCs — so it participates in Key().
	DCMode string `json:"dc_mode,omitempty"`
	// WindowTFI/WindowTFO bound the extraction window depths for
	// dc_mode "windowed-sat" (0 = engine defaults, negative = full
	// depth). They change which don't-cares are visible, so both
	// participate in Key().
	WindowTFI int `json:"window_tfi,omitempty"`
	WindowTFO int `json:"window_tfo,omitempty"`
}

// Job option string values.
const (
	JobMethodNone     = "none"
	JobMethodRank     = "rank"
	JobMethodLCF      = "lcf"
	JobMethodComplete = "complete"
)

// DC-extraction mode values for network jobs ("" = auto).
const (
	JobDCExhaustive  = "exhaustive"
	JobDCWindowedSAT = "windowed-sat"
)

// Normalize returns o with defaults filled and method-irrelevant knobs
// cleared: Method/Objective/Flow lower-cased with defaults "none",
// "power", "sop"; Fraction is kept only for "rank", Threshold only for
// "lcf"; UseBDD only where a BDD path exists (rank/lcf); AssignTies is
// cleared for "none" (no assignment runs) and for "complete" (which
// always binds ties), mirroring core.Options.Canonical. Two requests
// that normalize equal compute identical results, so Key() — and every
// cache keyed on it — must only ever see normalized options.
func (o JobOptions) Normalize() JobOptions {
	n := o
	n.Method = strings.ToLower(strings.TrimSpace(n.Method))
	if n.Method == "" {
		n.Method = JobMethodNone
	}
	n.Objective = strings.ToLower(strings.TrimSpace(n.Objective))
	if n.Objective == "" {
		n.Objective = "power"
	}
	n.Flow = strings.ToLower(strings.TrimSpace(n.Flow))
	if n.Flow == "" {
		n.Flow = "sop"
	}
	if n.Method != JobMethodRank {
		n.Fraction = 0
	}
	if n.Method != JobMethodLCF {
		n.Threshold = 0
	}
	if n.Method != JobMethodRank && n.Method != JobMethodLCF {
		n.UseBDD = false
	}
	if n.Method == JobMethodNone || n.Method == JobMethodComplete {
		// core.Options.Canonical(): ties handling is the only semantic
		// assignment knob, and it is inert for these methods.
		n.AssignTies = core.Options{}.Canonical().AssignTies
	}
	n.Kernels = strings.ToLower(strings.TrimSpace(n.Kernels))
	if n.Kernels == "default" {
		n.Kernels = ""
	}
	n.DCMode = strings.ToLower(strings.TrimSpace(n.DCMode))
	if n.DCMode == "auto" {
		n.DCMode = ""
	}
	if n.DCMode == JobDCExhaustive {
		// Window depths are meaningless for the exhaustive engine.
		n.WindowTFI, n.WindowTFO = 0, 0
	}
	// All negative depths mean "full depth": collapse to one spelling.
	if n.WindowTFI < 0 {
		n.WindowTFI = -1
	}
	if n.WindowTFO < 0 {
		n.WindowTFO = -1
	}
	return n
}

// Validate checks a normalized JobOptions. Call Normalize first.
func (o JobOptions) Validate() error {
	switch o.Method {
	case JobMethodNone, JobMethodComplete:
	case JobMethodRank:
		if o.Fraction < 0 || o.Fraction > 1 {
			return fmt.Errorf("pipeline: job fraction %v outside [0,1]", o.Fraction)
		}
	case JobMethodLCF:
		if o.Threshold <= 0 || o.Threshold >= 1 {
			return fmt.Errorf("pipeline: job threshold %v outside (0,1)", o.Threshold)
		}
	default:
		return fmt.Errorf("pipeline: unknown job method %q", o.Method)
	}
	switch o.Objective {
	case "delay", "power", "area":
	default:
		return fmt.Errorf("pipeline: unknown job objective %q", o.Objective)
	}
	switch o.Flow {
	case "sop", "resyn":
	default:
		return fmt.Errorf("pipeline: unknown job flow %q", o.Flow)
	}
	if o.TimeoutMs < 0 || o.MaxBDDNodes < 0 || o.MaxConflicts < 0 || o.MaxAIGNodes < 0 {
		return fmt.Errorf("pipeline: job budgets must be non-negative")
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("pipeline: job parallelism must be non-negative")
	}
	switch o.Kernels {
	case "", "on", "off", "fused", "unfused":
	default:
		return fmt.Errorf("pipeline: job kernels %q must be \"\", \"on\", \"off\", \"fused\" or \"unfused\"", o.Kernels)
	}
	switch o.DCMode {
	case "", JobDCExhaustive, JobDCWindowedSAT:
	default:
		return fmt.Errorf("pipeline: job dc_mode %q must be \"\", %q or %q", o.DCMode, JobDCExhaustive, JobDCWindowedSAT)
	}
	return nil
}

// Key returns a stable digest of the normalized options, suitable for
// combining with a spec content hash into a result-cache key.
// Parallelism and Kernels are zeroed before hashing: neither can affect
// the computed result (the parallel and kernel paths are bit-identical
// to the sequential scalar path), so hashing them would needlessly
// split identical work across cache entries and defeat request
// coalescing. DCMode, WindowTFI, and WindowTFO are NOT stripped: the
// extraction engine and window depths change which don't-cares the job
// sees, and therefore the answer — two jobs differing in them must
// never share a cache entry.
func (o JobOptions) Key() string {
	n := o.Normalize()
	n.Parallelism = 0
	n.Kernels = ""
	b, err := json.Marshal(n)
	if err != nil { // unreachable: plain struct of scalars
		panic(fmt.Sprintf("pipeline: marshal job options: %v", err))
	}
	sum := sha256.Sum256(append([]byte("relsyn/job/v1\n"), b...))
	return hex.EncodeToString(sum[:])
}

// kernelMode lowers the wire-format kernels knob onto core.KernelMode.
// "fused" and "unfused" both run the word-parallel kernels; whether the
// shared census feeds them is decided separately (censusEnabled).
func kernelMode(s string) core.KernelMode {
	switch s {
	case "on", "fused", "unfused":
		return core.KernelsOn
	case "off":
		return core.KernelsOff
	default:
		return core.KernelsDefault
	}
}

// CensusEnabled reports whether the job's analysis should be served
// from the shared neighbor-census engine. The census is the default on
// every kernel path — "unfused" and "off" opt out (per-metric passes
// and scalar oracles respectively), and the process default follows
// the bitset.UseKernels switch. The server's census peer-fill gate
// shares this predicate.
func (o JobOptions) CensusEnabled() bool {
	switch o.Normalize().Kernels {
	case "fused", "on":
		return true
	case "unfused", "off":
		return false
	default:
		return bitset.UseKernels
	}
}

// Options lowers the job options onto the runner's Options. The receiver
// is normalized and validated first.
func (o JobOptions) Options() (Options, error) {
	n := o.Normalize()
	if err := n.Validate(); err != nil {
		return Options{}, err
	}
	opt := Options{
		Strict:      n.Strict,
		SkipVerify:  n.SkipVerify,
		Parallelism: n.Parallelism,
		Kernels:     kernelMode(n.Kernels),
		Budget: Budget{
			Timeout:      time.Duration(n.TimeoutMs) * time.Millisecond,
			MaxBDDNodes:  n.MaxBDDNodes,
			MaxConflicts: n.MaxConflicts,
			MaxAIGNodes:  n.MaxAIGNodes,
		},
	}
	switch n.Method {
	case JobMethodNone:
		opt.Assign.Method = MethodNone
	case JobMethodRank:
		opt.Assign = AssignSpec{Method: MethodRanking, Fraction: n.Fraction,
			UseBDD: n.UseBDD, AssignTies: n.AssignTies}
	case JobMethodLCF:
		opt.Assign = AssignSpec{Method: MethodLCF, Threshold: n.Threshold,
			UseBDD: n.UseBDD, AssignTies: n.AssignTies}
	case JobMethodComplete:
		opt.Assign.Method = MethodComplete
	}
	switch n.Objective {
	case "delay":
		opt.Synth.Objective = synth.OptimizeDelay
	case "power":
		opt.Synth.Objective = synth.OptimizePower
	case "area":
		opt.Synth.Objective = synth.OptimizeArea
	}
	switch n.Flow {
	case "sop":
		opt.Synth.Flow = synth.FlowSOP
	case "resyn":
		opt.Synth.Flow = synth.FlowResyn
	}
	return opt, nil
}

// JobSpecInfo describes the input specification.
type JobSpecInfo struct {
	Inputs     int     `json:"inputs"`
	Outputs    int     `json:"outputs"`
	DCFraction float64 `json:"dc_fraction"`
}

// JobAssignInfo reports the assignment stage.
type JobAssignInfo struct {
	Method   string  `json:"method"`
	Assigned int     `json:"assigned"`
	TotalDCs int     `json:"total_dcs"`
	Fraction float64 `json:"fraction"`
}

// JobMetrics reports implementation costs with stable wire names.
type JobMetrics struct {
	Area     float64 `json:"area"`
	DelayPs  float64 `json:"delay_ps"`
	Power    float64 `json:"power"`
	Gates    int     `json:"gates"`
	Literals int     `json:"literals"`
	AIGNodes int     `json:"aig_nodes"`
	AIGDepth int     `json:"aig_depth"`
}

// JobBounds is the exact reliability envelope of the specification: the
// minimum and maximum error rates achievable by any DC assignment.
type JobBounds struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// JobFallback is the wire form of one degradation-ladder step.
type JobFallback struct {
	Stage  string `json:"stage"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// JobStage is the wire form of one stage report.
type JobStage struct {
	Stage    string   `json:"stage"`
	Attempts []string `json:"attempts"`
	TookMs   float64  `json:"took_ms"`
}

// JobResult is the serializable outcome of one synthesis job. On
// pipeline failure RunJob returns a partial JobResult (fallbacks and
// stages populated, metrics zero) alongside the error so callers can
// still report what was attempted.
type JobResult struct {
	Spec         JobSpecInfo    `json:"spec"`
	Assign       *JobAssignInfo `json:"assign,omitempty"`
	Metrics      JobMetrics     `json:"metrics"`
	ErrorRate    float64        `json:"error_rate"`
	Bounds       JobBounds      `json:"reliability_bounds"`
	Verified     bool           `json:"verified"`
	VerifyMethod string         `json:"verify_method,omitempty"`
	Degraded     bool           `json:"degraded"`
	Fallbacks    []JobFallback  `json:"fallbacks,omitempty"`
	Stages       []JobStage     `json:"stages,omitempty"`
	ElapsedMs    float64        `json:"elapsed_ms"`
}

// RunJob executes one serializable synthesis job: normalize and validate
// jo, run the fault-tolerant pipeline, and fold the outcome (metrics,
// fallback ladder, reliability figures) into a JobResult. On pipeline
// failure the partial JobResult and the error (carrying any *StageError)
// are both returned.
func RunJob(ctx context.Context, f *tt.Function, jo JobOptions) (*JobResult, error) {
	opt, err := jo.Options()
	if err != nil {
		return nil, err
	}
	n := jo.Normalize()
	// Fused analysis path: fetch (or compute and cache) the shared
	// neighbor census, keyed on the spec content hash alone, and thread
	// it through the assignment oracles and the reliability reports. A
	// census failure is never fatal — the per-metric kernel passes
	// compute the identical results without it.
	var cs []*bitset.Census
	if eng := census.Default; eng != nil && n.CensusEnabled() && f != nil && f.Validate() == nil {
		if fc, cerr := eng.For(ctx, pla.HashFunction(f), f, n.Parallelism); cerr == nil {
			cs = fc.Outs
		}
	}
	opt.Census = cs
	res, runErr := Run(ctx, f, opt)
	if res == nil {
		return nil, runErr
	}
	jr := &JobResult{
		Spec: JobSpecInfo{
			Inputs:     f.NumIn,
			Outputs:    f.NumOut(),
			DCFraction: f.DCFraction(),
		},
		Degraded:  res.Degraded(),
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, fb := range res.Fallbacks {
		jr.Fallbacks = append(jr.Fallbacks, JobFallback{
			Stage:  string(fb.Stage),
			From:   fb.From,
			To:     fb.To,
			Reason: string(fb.Cause.Reason),
		})
	}
	for _, st := range res.Stages {
		jr.Stages = append(jr.Stages, JobStage{
			Stage:    string(st.Stage),
			Attempts: append([]string(nil), st.Attempts...),
			TookMs:   float64(st.Took) / float64(time.Millisecond),
		})
	}
	if runErr != nil {
		return jr, runErr
	}
	if res.Assign != nil {
		jr.Assign = &JobAssignInfo{
			Method:   n.Method,
			Assigned: len(res.Assign.Assigned),
			TotalDCs: res.Assign.TotalDCs,
			Fraction: res.Assign.FractionAssigned(),
		}
	}
	m := res.Synth.Metrics
	jr.Metrics = JobMetrics{
		Area:     m.Area,
		DelayPs:  m.DelayPs,
		Power:    m.Power,
		Gates:    m.Gates,
		Literals: m.Literals,
		AIGNodes: m.AIGNodes,
		AIGDepth: m.AIGDepth,
	}
	jr.Verified, jr.VerifyMethod = res.Verified, res.VerifyMethod
	er, err := reliability.ErrorRateMeanCtx(ctx, f, res.Synth.Impl, n.Parallelism)
	if err != nil {
		return jr, fmt.Errorf("pipeline: error-rate report: %w", err)
	}
	jr.ErrorRate = er
	lo, hi, err := reliability.BoundsMeanCensusCtx(ctx, f, cs, n.Parallelism)
	if err != nil {
		return jr, fmt.Errorf("pipeline: bounds report: %w", err)
	}
	jr.Bounds = JobBounds{Min: lo, Max: hi}
	return jr, nil
}
