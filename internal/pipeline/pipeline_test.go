package pipeline_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"relsyn/internal/benchmarks"
	"relsyn/internal/cec"
	"relsyn/internal/faultinject"
	"relsyn/internal/pipeline"
	"relsyn/internal/reliability"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

func load(t *testing.T, name string) *tt.Function {
	t.Helper()
	f, err := benchmarks.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func baseOptions() pipeline.Options {
	return pipeline.Options{
		Assign: pipeline.AssignSpec{Method: pipeline.MethodLCF, Threshold: 0.55, UseBDD: true},
		Synth:  synth.Options{Flow: synth.FlowResyn},
	}
}

// checkConsistent asserts that the pipeline's implementation respects the
// specification's care set.
func checkConsistent(t *testing.T, spec *tt.Function, res *pipeline.Result) {
	t.Helper()
	if res.Synth == nil || res.Synth.Impl == nil {
		t.Fatal("pipeline succeeded without an implementation")
	}
	impl := res.Synth.Impl
	for o := range spec.Outs {
		if miss := spec.Outs[o].On.Difference(impl.Outs[o].On); miss.Any() {
			t.Fatalf("output %d drops on-set minterm %d", o, miss.NextSet(0))
		}
		if hit := impl.Outs[o].On.Intersect(spec.OffSet(o)); hit.Any() {
			t.Fatalf("output %d asserts off-set minterm %d", o, hit.NextSet(0))
		}
	}
}

func TestRunHappyPath(t *testing.T) {
	spec := load(t, "bench")
	res, err := pipeline.Run(context.Background(), spec, baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.VerifyMethod != "sat" {
		t.Fatalf("want SAT-verified result, got verified=%v method=%q", res.Verified, res.VerifyMethod)
	}
	if res.Degraded() {
		t.Fatalf("unexpected fallbacks: %v", res.Fallbacks)
	}
	if res.Assign == nil || res.Assign.TotalDCs == 0 {
		t.Fatal("assignment stage did not run")
	}
	checkConsistent(t, spec, res)
	if len(res.Stages) != 3 {
		t.Fatalf("want 3 stage reports, got %v", res.Stages)
	}
}

func TestRunValidation(t *testing.T) {
	spec := load(t, "bench")
	cases := []pipeline.Options{
		{Assign: pipeline.AssignSpec{Method: pipeline.MethodRanking, Fraction: 1.5}},
		{Assign: pipeline.AssignSpec{Method: pipeline.MethodLCF, Threshold: 0}},
		{Assign: pipeline.AssignSpec{Method: pipeline.MethodLCF, Threshold: 1}},
		{Assign: pipeline.AssignSpec{Method: "bogus"}},
	}
	for i, opt := range cases {
		if _, err := pipeline.Run(context.Background(), spec, opt); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
	if _, err := pipeline.Run(context.Background(), nil, pipeline.Options{}); err == nil {
		t.Fatal("nil function accepted")
	}
}

// sweepBenchmarks returns the benchmarks the injection sweep runs on:
// every suite entry with <= 10 inputs (the 12-input entries are exercised
// by the cancellation-latency test, where the deadline caps their cost).
func sweepBenchmarks(t *testing.T) []string {
	if testing.Short() {
		return []string{"bench", "fout"}
	}
	var names []string
	for _, s := range benchmarks.Specs() {
		if s.Inputs <= 10 {
			names = append(names, s.Name)
		}
	}
	return names
}

// degradable maps each injection point to whether the ladder has a rung
// below it, and names the forcer point that routes execution to it.
var sweepTopology = map[string]struct {
	degradable bool
	forcer     string // point to pre-exhaust so execution reaches this rung
}{
	"assign/bdd":        {degradable: true},
	"assign/dense":      {degradable: false, forcer: "assign/bdd"},
	"synth/resyn":       {degradable: true},
	"synth/sop":         {degradable: false, forcer: "synth/resyn"},
	"verify/sat":        {degradable: true},
	"verify/exhaustive": {degradable: false, forcer: "verify/sat"},
}

// TestInjectionSweep crosses every stage-boundary injection point with
// every fault kind on the benchmark suite and asserts the pipeline's core
// guarantee: each run ends in a care-set-consistent, CEC-verified
// implementation via a documented fallback, or in a typed *StageError —
// never a process panic, never a hang.
func TestInjectionSweep(t *testing.T) {
	for _, bench := range sweepBenchmarks(t) {
		spec := load(t, bench)
		for _, c := range faultinject.Plan() {
			c := c
			t.Run(bench+"/"+c.String(), func(t *testing.T) {
				topo, ok := sweepTopology[c.Point]
				if !ok {
					t.Fatalf("unknown injection point %q", c.Point)
				}
				h := faultinject.New(c.Point, c.Kind)
				ctx := h.Bind(context.Background())
				hook := h.Hook
				if topo.forcer != "" {
					forcer := faultinject.New(topo.forcer, faultinject.Budget)
					hook = faultinject.Chain(forcer.Hook, h.Hook)
				}
				opt := baseOptions()
				opt.Inject = hook
				res, err := pipeline.Run(ctx, spec, opt)
				if !h.Fired() {
					t.Fatalf("injection at %s never fired", c.Point)
				}

				if c.Kind == faultinject.Cancel {
					assertStageError(t, err, c.Point, pipeline.ReasonCancel)
					return
				}
				wantReason := pipeline.ReasonPanic
				if c.Kind == faultinject.Budget {
					wantReason = pipeline.ReasonBudget
				}
				if topo.degradable {
					if err != nil {
						t.Fatalf("degradable point %s did not degrade: %v", c.Point, err)
					}
					if !res.Verified {
						t.Fatalf("degraded run not verified (fallbacks %v)", res.Fallbacks)
					}
					checkConsistent(t, spec, res)
					if !hasFallbackFrom(res, c.Point) {
						t.Fatalf("no fallback recorded from %s: %v", c.Point, res.Fallbacks)
					}
				} else {
					assertStageError(t, err, c.Point, wantReason)
				}
			})
		}
	}
}

func hasFallbackFrom(res *pipeline.Result, from string) bool {
	for _, fb := range res.Fallbacks {
		if fb.From == from {
			return true
		}
	}
	return false
}

func assertStageError(t *testing.T, err error, attempt string, reason pipeline.Reason) {
	t.Helper()
	if err == nil {
		t.Fatalf("want *StageError at %s [%s], got success", attempt, reason)
	}
	var serr *pipeline.StageError
	if !errors.As(err, &serr) {
		t.Fatalf("want *StageError, got %T: %v", err, err)
	}
	if serr.Attempt != attempt || serr.Reason != reason {
		t.Fatalf("want failure at %s [%s], got %s [%s]: %v",
			attempt, reason, serr.Attempt, serr.Reason, serr.Err)
	}
	wantRetryable := reason == pipeline.ReasonBudget || reason == pipeline.ReasonCancel
	if serr.Retryable() != wantRetryable {
		t.Fatalf("Retryable() = %v for reason %s", serr.Retryable(), reason)
	}
	if reason == pipeline.ReasonPanic && serr.Stack == nil {
		t.Fatal("panic StageError missing stack")
	}
}

// TestStrictDisablesDegradation checks that Options.Strict turns the
// first recoverable failure into a terminal StageError.
func TestStrictDisablesDegradation(t *testing.T) {
	spec := load(t, "bench")
	h := faultinject.New("synth/resyn", faultinject.Panic)
	opt := baseOptions()
	opt.Strict = true
	opt.Inject = h.Hook
	_, err := pipeline.Run(context.Background(), spec, opt)
	assertStageError(t, err, "synth/resyn", pipeline.ReasonPanic)

	// The same fault degrades to synth/sop without Strict.
	h2 := faultinject.New("synth/resyn", faultinject.Panic)
	opt.Strict = false
	opt.Inject = h2.Hook
	res, err := pipeline.Run(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFallbackFrom(res, "synth/resyn") || !res.Verified {
		t.Fatalf("non-strict run should degrade and verify: %+v", res.Fallbacks)
	}
}

// TestBDDBudgetFallsBackToDense drives the assign stage into a real (not
// injected) BDD node-budget exhaustion and checks both the fallback and
// that the degraded result is bit-identical to the dense path's.
func TestBDDBudgetFallsBackToDense(t *testing.T) {
	spec := load(t, "bench")
	opt := baseOptions()
	opt.Budget.MaxBDDNodes = 8 // far below any useful set representation
	res, err := pipeline.Run(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFallbackFrom(res, "assign/bdd") {
		t.Fatalf("tiny BDD budget did not trigger fallback: %v", res.Fallbacks)
	}
	if res.Fallbacks[0].Cause.Reason != pipeline.ReasonBudget {
		t.Fatalf("fallback cause = %s, want budget", res.Fallbacks[0].Cause.Reason)
	}

	opt2 := baseOptions()
	opt2.Assign.UseBDD = false
	want, err := pipeline.Run(context.Background(), spec, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assign.Func.Equal(want.Assign.Func) {
		t.Fatal("degraded BDD run disagrees with dense run")
	}
	// Strict mode surfaces the same exhaustion as a typed error.
	opt.Strict = true
	_, err = pipeline.Run(context.Background(), spec, opt)
	assertStageError(t, err, "assign/bdd", pipeline.ReasonBudget)
}

// TestAIGBudget checks that a too-small AIG cap surfaces as a retryable
// budget StageError wrapping synth.ErrAIGBudget.
func TestAIGBudget(t *testing.T) {
	spec := load(t, "bench")
	opt := baseOptions()
	opt.Synth.Flow = synth.FlowSOP
	opt.Budget.MaxAIGNodes = 2
	_, err := pipeline.Run(context.Background(), spec, opt)
	assertStageError(t, err, "synth/sop", pipeline.ReasonBudget)
	if !errors.Is(err, synth.ErrAIGBudget) {
		t.Fatalf("want ErrAIGBudget, got %v", err)
	}
}

// TestConflictBudgetFallsBackToExhaustive starves the SAT verifier so the
// verdict is Unknown, and checks the exhaustive CEC rung takes over.
func TestConflictBudgetFallsBackToExhaustive(t *testing.T) {
	spec := load(t, "p3")
	opt := baseOptions()
	opt.Budget.MaxConflicts = 1
	res, err := pipeline.Run(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("degraded run not verified")
	}
	if res.VerifyMethod != "exhaustive" || !hasFallbackFrom(res, "verify/sat") {
		t.Fatalf("want exhaustive fallback, got method=%q fallbacks=%v",
			res.VerifyMethod, res.Fallbacks)
	}
	if !errors.Is(res.Fallbacks[0].Cause, cec.ErrUnknown) {
		t.Fatalf("fallback cause should wrap cec.ErrUnknown: %v", res.Fallbacks[0].Cause)
	}
	// Strict mode surfaces the Unknown verdict instead.
	opt.Strict = true
	_, err = pipeline.Run(context.Background(), spec, opt)
	assertStageError(t, err, "verify/sat", pipeline.ReasonBudget)
}

// TestDeadlineReturnsPromptly runs the whole benchmark suite under
// deadlines that land mid-stage and asserts every run returns within
// latencySlack of the deadline — the pipeline's bounded-cancellation
// guarantee.
func TestDeadlineReturnsPromptly(t *testing.T) {
	timeouts := []time.Duration{5 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond}
	if testing.Short() {
		timeouts = timeouts[:2]
	}
	for _, spec := range benchmarks.Specs() {
		f := load(t, spec.Name)
		for _, d := range timeouts {
			opt := baseOptions()
			opt.Budget.Timeout = d
			start := time.Now()
			res, err := pipeline.Run(context.Background(), f, opt)
			elapsed := time.Since(start)
			if over := elapsed - d; err != nil && over > latencySlack {
				t.Errorf("%s timeout=%v: returned %v past the deadline (limit %v)",
					spec.Name, d, over, latencySlack)
			}
			if err == nil {
				checkConsistent(t, f, res)
				continue
			}
			var serr *pipeline.StageError
			if !errors.As(err, &serr) {
				t.Fatalf("%s: deadline produced %T, want *StageError: %v", spec.Name, err, err)
			}
			if serr.Reason != pipeline.ReasonCancel {
				t.Fatalf("%s: deadline produced reason %s: %v", spec.Name, serr.Reason, err)
			}
		}
	}
}

// TestCancelBeforeStart covers immediate cancellation.
func TestCancelBeforeStart(t *testing.T) {
	spec := load(t, "bench")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pipeline.Run(ctx, spec, baseOptions())
	var serr *pipeline.StageError
	if !errors.As(err, &serr) || serr.Reason != pipeline.ReasonCancel {
		t.Fatalf("want cancel StageError, got %v", err)
	}
}

// TestMethodsAndFlows exercises the full option matrix end to end.
func TestMethodsAndFlows(t *testing.T) {
	spec := load(t, "fout")
	methods := []pipeline.AssignSpec{
		{Method: pipeline.MethodNone},
		{Method: pipeline.MethodRanking, Fraction: 0.5},
		{Method: pipeline.MethodRanking, Fraction: 0.5, UseBDD: true},
		{Method: pipeline.MethodLCF, Threshold: 0.55},
		{Method: pipeline.MethodComplete},
	}
	for _, m := range methods {
		for _, flow := range []synth.Flow{synth.FlowSOP, synth.FlowResyn} {
			res, err := pipeline.Run(context.Background(), spec, pipeline.Options{
				Assign: m,
				Synth:  synth.Options{Flow: flow},
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", m.Method, flow, err)
			}
			if !res.Verified {
				t.Fatalf("%v/%v: not verified", m.Method, flow)
			}
			checkConsistent(t, spec, res)
		}
	}
}

// TestDegradedResultStillImprovesReliability sanity-checks that even a
// degraded pipeline (BDD and resyn rungs knocked out) still delivers the
// paper's reliability win over conventional synthesis.
func TestDegradedResultStillImprovesReliability(t *testing.T) {
	spec := load(t, "bench")
	conv, err := pipeline.Run(context.Background(), spec, pipeline.Options{
		Synth: synth.Options{Flow: synth.FlowSOP},
	})
	if err != nil {
		t.Fatal(err)
	}
	hBDD := faultinject.New("assign/bdd", faultinject.Panic)
	hResyn := faultinject.New("synth/resyn", faultinject.Budget)
	opt := baseOptions()
	opt.Assign = pipeline.AssignSpec{Method: pipeline.MethodComplete}
	opt.Inject = faultinject.Chain(hBDD.Hook, hResyn.Hook)
	rel, err := pipeline.Run(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	convER, err := reliability.ErrorRateMean(spec, conv.Synth.Impl)
	if err != nil {
		t.Fatal(err)
	}
	relER, err := reliability.ErrorRateMean(spec, rel.Synth.Impl)
	if err != nil {
		t.Fatal(err)
	}
	if relER > convER {
		t.Fatalf("degraded reliability run worse than conventional: %v > %v", relER, convER)
	}
}
