// Network jobs: the BLIF-input analogue of RunJob. Where RunJob
// synthesizes a single truth-table specification, RunNetworkJob rewrites
// the nodes of an existing multi-level network in place — extracting
// each node's internal don't-cares and binding them with the LC^f
// reassignment (paper §4 nodal decomposition) so the circuit masks more
// internal errors without changing its primary-output functions.
//
// The extraction engine is the job's semantic fork (JobOptions.DCMode):
//
//	exhaustive    complete internal DCs by bit-parallel simulation over
//	              all 2^NumPI minterms — exact, but only for NumPI <= 16.
//	windowed-sat  per-node TFI/TFO windows + SAT enumeration
//	              (internal/network window.go / satdc.go) — a sound
//	              subset of the complete DCs at any network size.
//
// The degradation ladder connects them in both directions:
//
//	extract: exhaustive   -> windowed-sat  (network too large / budget)
//	extract: windowed-sat -> exhaustive    (SAT budget ran out and the
//	                                        network is small enough for
//	                                        the complete extraction)
//
// As everywhere in this package, Strict disables the ladder and a
// cancelled context never degrades.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"relsyn/internal/network"
	"relsyn/internal/obs"
	"relsyn/internal/sat"
)

// StageExtract is the DC-extraction + reassignment stage of network jobs.
const StageExtract Stage = "extract"

// MaxExhaustivePI is the largest primary-input count the exhaustive
// (dense truth-table) extraction engine accepts: 2^16 minterms per
// signal table keeps it in the same envelope as the exhaustive CEC path.
const MaxExhaustivePI = 16

// NetworkJobResult is the serializable outcome of one network job. On
// failure RunNetworkJob returns a partial result (fallbacks and stages
// populated) alongside the error, mirroring RunJob.
type NetworkJobResult struct {
	// Network is the reassigned network (nil on failure). It is excluded
	// from the wire form — callers that want the circuit emit BLIF.
	Network *network.Network `json:"-"`

	NumPI int `json:"num_pi"`
	NumPO int `json:"num_po"`
	Nodes int `json:"nodes"`

	// DCMode is the extraction rung that produced the result
	// ("exhaustive" or "windowed-sat"), after auto-selection and any
	// ladder step — see Fallbacks for the path taken.
	DCMode string `json:"dc_mode"`
	// Assigned counts DC patterns bound for reliability.
	Assigned int `json:"assigned"`

	// Windowed-extraction effort (zero for the exhaustive rung).
	Windows         int `json:"windows,omitempty"`
	SATCalls        int `json:"sat_calls,omitempty"`
	BudgetExhausted int `json:"budget_exhausted,omitempty"`

	// Equivalent reports the post-reassignment equivalence check of the
	// windowed rung (always true on success); CECMethod is "sat" or
	// "exhaustive". The exhaustive rung preserves POs by construction
	// and reports Equivalent=true with CECMethod "construction".
	Equivalent bool   `json:"equivalent"`
	CECMethod  string `json:"cec_method,omitempty"`

	// LiteralsBefore/After are the SOP-literal area proxy of the
	// network before and after reassignment.
	LiteralsBefore int `json:"literals_before"`
	LiteralsAfter  int `json:"literals_after"`

	Degraded  bool          `json:"degraded"`
	Fallbacks []JobFallback `json:"fallbacks,omitempty"`
	Stages    []JobStage    `json:"stages,omitempty"`
	ElapsedMs float64       `json:"elapsed_ms"`
}

// RunNetworkJob executes one serializable network-reassignment job:
// normalize and validate jo (Method must be "lcf" — the network path
// exists to reassign internal DCs under the LC^f threshold), run the
// extraction ladder, and fold the outcome into a NetworkJobResult.
func RunNetworkJob(ctx context.Context, nw *network.Network, jo JobOptions) (*NetworkJobResult, error) {
	n := jo.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	opt, err := n.Options()
	if err != nil {
		return nil, err
	}
	return RunNetworkJobOpt(ctx, nw, jo, opt)
}

// RunNetworkJobOpt is RunNetworkJob under explicit runner Options — the
// Run analogue for network jobs, exposing Strict, Inject, and Metrics to
// tests and the daemon. Budgets and strictness are taken from opt; the
// semantic knobs (threshold, dc_mode, window depths) from jo.
func RunNetworkJobOpt(ctx context.Context, nw *network.Network, jo JobOptions, opt Options) (*NetworkJobResult, error) {
	n := jo.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.Method != JobMethodLCF {
		return nil, fmt.Errorf("pipeline: network jobs require method %q, got %q", JobMethodLCF, n.Method)
	}
	if nw == nil {
		return nil, fmt.Errorf("pipeline: nil network")
	}
	if opt.Budget.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Budget.Timeout)
		defer cancel()
	}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "pipeline/netjob")
	span.SetAttr("dc_mode", n.DCMode)
	r := &runner{ctx: ctx, opt: opt, res: &Result{}, span: span}

	jr := &NetworkJobResult{
		NumPI:          nw.NumPI,
		NumPO:          len(nw.POs),
		Nodes:          nw.NumNodes(),
		LiteralsBefore: nw.TotalLiterals(),
	}
	serr := r.runExtract(nw, n, jr)
	status := "ok"
	if serr != nil {
		status = "error"
		span.SetAttr("error", serr.Error())
	}
	r.reg().Counter("relsyn_pipeline_runs_total", obs.L("status", status)).Inc()
	span.SetAttrf("fallbacks", "%d", len(r.res.Fallbacks))
	span.End()

	jr.Degraded = r.res.Degraded()
	for _, fb := range r.res.Fallbacks {
		jr.Fallbacks = append(jr.Fallbacks, JobFallback{
			Stage:  string(fb.Stage),
			From:   fb.From,
			To:     fb.To,
			Reason: string(fb.Cause.Reason),
		})
	}
	for _, st := range r.res.Stages {
		jr.Stages = append(jr.Stages, JobStage{
			Stage:    string(st.Stage),
			Attempts: append([]string(nil), st.Attempts...),
			TookMs:   float64(st.Took) / float64(time.Millisecond),
		})
	}
	jr.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	if serr != nil {
		return jr, serr
	}
	jr.LiteralsAfter = jr.Network.TotalLiterals()
	return jr, nil
}

// runExtract walks the extraction ladder. Each rung reassigns a clone of
// the input network, so a failed rung leaves no partial mutation behind
// and the fallback rung starts from the pristine circuit.
func (r *runner) runExtract(nw *network.Network, n JobOptions, jr *NetworkJobResult) *StageError {
	began := time.Now()
	defer r.finishStage(StageExtract, began)

	mode := n.DCMode
	if mode == "" {
		if nw.NumPI <= MaxExhaustivePI {
			mode = JobDCExhaustive
		} else {
			mode = JobDCWindowedSAT
		}
	}

	exhaustive := func() error {
		if nw.NumPI > MaxExhaustivePI {
			return fmt.Errorf("pipeline: exhaustive extraction limited to %d inputs, got %d: %w",
				MaxExhaustivePI, nw.NumPI, ErrBudget)
		}
		c := nw.Clone()
		assigned, err := c.ReassignLCF(n.Threshold)
		if err != nil {
			return err
		}
		jr.Network = c
		jr.DCMode = JobDCExhaustive
		jr.Assigned = assigned
		jr.Windows, jr.SATCalls, jr.BudgetExhausted = 0, 0, 0
		// ReassignLCF binds exact complete DCs node by node, which
		// preserves PO functions by construction.
		jr.Equivalent, jr.CECMethod = true, "construction"
		return nil
	}
	windowed := func() error {
		c := nw.Clone()
		rep, err := c.ReassignLCFWindowed(n.Threshold, network.SatDCOptions{
			Window:       network.WindowOptions{TFI: n.WindowTFI, TFO: n.WindowTFO},
			MaxConflicts: r.opt.Budget.MaxConflicts,
			Interrupt:    r.interruptBool,
		})
		if rep != nil {
			jr.Windows, jr.SATCalls, jr.BudgetExhausted =
				rep.Windows, rep.SATCalls, rep.BudgetExhausted
		}
		if err != nil {
			return err
		}
		if rep.BudgetExhausted > 0 && nw.NumPI <= MaxExhaustivePI {
			// Partial specs are sound but weaker; when the complete
			// extraction is in reach, surface the exhaustion as a
			// degradable budget failure instead of keeping the weaker
			// answer.
			return fmt.Errorf("pipeline: windowed extraction degraded on %d node(s): %w",
				rep.BudgetExhausted, sat.ErrBudget)
		}
		jr.Network = c
		jr.DCMode = JobDCWindowedSAT
		jr.Assigned = rep.Assigned
		jr.Equivalent, jr.CECMethod = rep.Equivalent, rep.CECMethod
		return nil
	}

	canDegrade := func(serr *StageError) bool {
		return serr.Reason == ReasonBudget || serr.Reason == ReasonPanic
	}
	if mode == JobDCExhaustive {
		serr := r.attempt(StageExtract, "extract/exhaustive", exhaustive)
		if serr == nil {
			return nil
		}
		if !canDegrade(serr) {
			return serr
		}
		if serr = r.degrade(serr, "extract/windowed-sat"); serr != nil {
			return serr
		}
		return r.attempt(StageExtract, "extract/windowed-sat", windowed)
	}
	serr := r.attempt(StageExtract, "extract/windowed-sat", windowed)
	if serr == nil {
		return nil
	}
	if !canDegrade(serr) || nw.NumPI > MaxExhaustivePI {
		return serr
	}
	if serr = r.degrade(serr, "extract/exhaustive"); serr != nil {
		return serr
	}
	return r.attempt(StageExtract, "extract/exhaustive", exhaustive)
}
