package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"relsyn/internal/census"
	"relsyn/internal/tt"
)

// jobTestFunction builds a small incompletely specified function.
func jobTestFunction() *tt.Function {
	f := tt.New(4, 2)
	for _, m := range []int{1, 3, 5, 7, 9} {
		f.SetPhase(0, m, tt.On)
	}
	for _, m := range []int{0, 2, 8} {
		f.SetPhase(0, m, tt.DC)
	}
	for _, m := range []int{4, 6, 12, 14} {
		f.SetPhase(1, m, tt.On)
	}
	for _, m := range []int{5, 13} {
		f.SetPhase(1, m, tt.DC)
	}
	return f
}

func TestJobOptionsNormalizeDefaults(t *testing.T) {
	n := JobOptions{}.Normalize()
	if n.Method != JobMethodNone || n.Objective != "power" || n.Flow != "sop" {
		t.Fatalf("zero value normalized to %+v", n)
	}
	// Irrelevant knobs are cleared per method.
	n = JobOptions{Method: "Complete", Fraction: 0.7, Threshold: 0.5,
		UseBDD: true, AssignTies: true}.Normalize()
	if n.Method != JobMethodComplete {
		t.Fatalf("method not lower-cased: %q", n.Method)
	}
	if n.Fraction != 0 || n.Threshold != 0 || n.UseBDD || n.AssignTies {
		t.Fatalf("complete-method normalization kept inert knobs: %+v", n)
	}
	n = JobOptions{Method: "rank", Fraction: 0.7, Threshold: 0.5}.Normalize()
	if n.Fraction != 0.7 || n.Threshold != 0 {
		t.Fatalf("rank normalization wrong: %+v", n)
	}
}

// Equivalent requests must collide on Key; different option structs must
// not (the satellite counterpart to the PLA canonicalization tests).
func TestJobOptionsKey(t *testing.T) {
	base := JobOptions{Method: "lcf", Threshold: 0.55}
	same := []JobOptions{
		{Method: "LCF", Threshold: 0.55},
		{Method: "lcf", Threshold: 0.55, Fraction: 0.9}, // fraction inert for lcf
		{Method: " lcf ", Threshold: 0.55, Objective: "power", Flow: "sop"},
		// Parallelism is an execution knob: every worker count computes
		// bit-identical results, so it must never fragment the cache.
		{Method: "lcf", Threshold: 0.55, Parallelism: 1},
		{Method: "lcf", Threshold: 0.55, Parallelism: 8},
		// Kernels is likewise operational: kernel and scalar paths are
		// bit-identical (metatest property 6), so it must never
		// fragment the cache either.
		{Method: "lcf", Threshold: 0.55, Kernels: "on"},
		{Method: "lcf", Threshold: 0.55, Kernels: "OFF"},
		{Method: "lcf", Threshold: 0.55, Kernels: "default"},
	}
	for i, o := range same {
		if o.Key() != base.Key() {
			t.Fatalf("equivalent options %d produced a different key", i)
		}
	}
	different := []JobOptions{
		{Method: "lcf", Threshold: 0.56},
		{Method: "lcf", Threshold: 0.55, UseBDD: true},
		{Method: "lcf", Threshold: 0.55, AssignTies: true},
		{Method: "rank", Fraction: 0.55},
		{Method: "lcf", Threshold: 0.55, Objective: "area"},
		{Method: "lcf", Threshold: 0.55, Flow: "resyn"},
		{Method: "lcf", Threshold: 0.55, SkipVerify: true},
		{Method: "lcf", Threshold: 0.55, Strict: true},
		{Method: "lcf", Threshold: 0.55, TimeoutMs: 1000},
		{Method: "lcf", Threshold: 0.55, MaxBDDNodes: 64},
		{},
	}
	seen := map[string]int{base.Key(): -1}
	for i, o := range different {
		k := o.Key()
		if j, ok := seen[k]; ok {
			t.Fatalf("options %d and %d collided", i, j)
		}
		seen[k] = i
	}
}

func TestJobOptionsValidate(t *testing.T) {
	bad := []JobOptions{
		{Method: "bogus"},
		{Method: "rank", Fraction: 1.5},
		{Method: "rank", Fraction: -0.1},
		{Method: "lcf", Threshold: 0},
		{Method: "lcf", Threshold: 1},
		{Objective: "speed"},
		{Flow: "fast"},
		{TimeoutMs: -1},
		{MaxBDDNodes: -2},
		{Parallelism: -1},
		{Kernels: "fast"},
	}
	for i, o := range bad {
		if err := o.Normalize().Validate(); err == nil {
			t.Fatalf("case %d: invalid options %+v accepted", i, o)
		}
		if _, err := o.Options(); err == nil {
			t.Fatalf("case %d: Options() accepted invalid %+v", i, o)
		}
	}
	if err := (JobOptions{}).Normalize().Validate(); err != nil {
		t.Fatalf("zero value invalid: %v", err)
	}
}

func TestRunJobLCF(t *testing.T) {
	f := jobTestFunction()
	res, err := RunJob(context.Background(), f, JobOptions{Method: "lcf", Threshold: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Inputs != 4 || res.Spec.Outputs != 2 {
		t.Fatalf("spec info wrong: %+v", res.Spec)
	}
	if res.Assign == nil || res.Assign.Method != "lcf" || res.Assign.TotalDCs != 5 {
		t.Fatalf("assign info wrong: %+v", res.Assign)
	}
	if !res.Verified || res.VerifyMethod == "" {
		t.Fatalf("job not verified: %+v", res)
	}
	if res.Metrics.Gates <= 0 || res.Metrics.Area <= 0 {
		t.Fatalf("metrics not populated: %+v", res.Metrics)
	}
	if res.Bounds.Min > res.ErrorRate+1e-12 || res.ErrorRate > res.Bounds.Max+1e-12 {
		t.Fatalf("error rate %v outside bounds [%v,%v]",
			res.ErrorRate, res.Bounds.Min, res.Bounds.Max)
	}
	// The result must round-trip through JSON with stable field names.
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"spec"`, `"metrics"`, `"error_rate"`,
		`"reliability_bounds"`, `"verified"`, `"elapsed_ms"`, `"aig_nodes"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("JSON missing %s:\n%s", want, b)
		}
	}
	var back JobResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics != res.Metrics || back.Verified != res.Verified {
		t.Fatalf("JSON round trip mutated result")
	}
}

// A strict run with an exhausted BDD budget fails with a budget
// StageError, and the partial JobResult still reports the attempt.
func TestRunJobStrictBudgetFailure(t *testing.T) {
	f := jobTestFunction()
	res, err := RunJob(context.Background(), f, JobOptions{
		Method: "lcf", Threshold: 0.55, UseBDD: true, MaxBDDNodes: 4, Strict: true,
	})
	if err == nil {
		t.Fatal("strict run with tiny BDD budget succeeded")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Reason != ReasonBudget {
		t.Fatalf("error not a budget StageError: %v", err)
	}
	if res == nil || len(res.Stages) == 0 {
		t.Fatalf("partial result missing stage reports: %+v", res)
	}
}

// The same budget without Strict degrades to the dense path and succeeds,
// and the fallback is visible in the serialized result.
func TestRunJobDegrades(t *testing.T) {
	f := jobTestFunction()
	res, err := RunJob(context.Background(), f, JobOptions{
		Method: "lcf", Threshold: 0.55, UseBDD: true, MaxBDDNodes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.Fallbacks) == 0 {
		t.Fatalf("degradation not reported: %+v", res)
	}
	fb := res.Fallbacks[0]
	if fb.Stage != "assign" || fb.To != "assign/dense" || fb.Reason != "budget" {
		t.Fatalf("fallback wrong: %+v", fb)
	}
}

func TestRunJobNilAndInvalid(t *testing.T) {
	if _, err := RunJob(context.Background(), nil, JobOptions{}); err == nil {
		t.Fatal("nil function accepted")
	}
	if _, err := RunJob(context.Background(), jobTestFunction(),
		JobOptions{Method: "bogus"}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

// The fused-census knobs are execution knobs: "fused" and "unfused"
// must validate, lower onto the kernel path, and never fragment the
// result-cache key (the census cache itself is keyed on the spec hash
// alone; internal/census pins that half of the contract).
func TestJobOptionsFusedKnobKeyPurity(t *testing.T) {
	base := JobOptions{Method: "lcf", Threshold: 0.55}
	for _, k := range []string{"", "on", "off", "fused", "unfused", "FUSED", " Unfused "} {
		o := JobOptions{Method: "lcf", Threshold: 0.55, Kernels: k, Parallelism: 4}
		if err := o.Normalize().Validate(); err != nil {
			t.Fatalf("kernels=%q rejected: %v", k, err)
		}
		if o.Key() != base.Key() {
			t.Fatalf("kernels=%q fragmented the result-cache key", k)
		}
	}
	if !(JobOptions{Kernels: "fused"}).CensusEnabled() {
		t.Fatal("kernels=fused did not enable the census engine")
	}
	if (JobOptions{Kernels: "unfused"}).CensusEnabled() {
		t.Fatal("kernels=unfused still enabled the census engine")
	}
	if (JobOptions{Kernels: "off"}).CensusEnabled() {
		t.Fatal("kernels=off still enabled the census engine")
	}
}

// One spec run under different option mixes (fractions, thresholds,
// parallelism, fused knob spelled differently) must share a single
// census-cache entry: the census key is the spec hash alone, so the
// first job computes and every later job hits.
func TestRunJobSharesCensusAcrossOptionKnobs(t *testing.T) {
	old := census.Default
	eng := census.NewEngine(16, 1<<22)
	census.SetDefault(eng)
	defer census.SetDefault(old)

	f := jobTestFunction()
	jobs := []JobOptions{
		{Method: "rank", Fraction: 0.3, Kernels: "fused", SkipVerify: true},
		{Method: "rank", Fraction: 0.9, Kernels: "fused", SkipVerify: true, Parallelism: 4},
		{Method: "lcf", Threshold: 0.55, Kernels: "on", SkipVerify: true, Parallelism: 2},
	}
	for i, jo := range jobs {
		if _, err := RunJob(context.Background(), f, jo); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	st := eng.Stats()
	if st.Len != 1 {
		t.Fatalf("census cache holds %d entries after option sweep, want 1 (knobs fragmented the key)", st.Len)
	}
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("census hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}
