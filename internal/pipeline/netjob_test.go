package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"relsyn/internal/bitset"
	"relsyn/internal/network"
	"relsyn/internal/sat"
)

// netTestNetwork builds a small 3-PI network with internal don't-cares:
// sig3 = AND(pi0,pi1), sig4 = XOR(sig3,pi2), sig5 = OR(sig4,pi0);
// POs: sig5, sig3.
func netTestNetwork(t *testing.T) *network.Network {
	t.Helper()
	nw := &network.Network{NumPI: 3}
	and := bitset.New(4)
	and.Set(3)
	nw.Nodes = append(nw.Nodes, network.Node{Fanins: []int{0, 1}, Table: and})
	xor := bitset.New(4)
	xor.Set(1)
	xor.Set(2)
	nw.Nodes = append(nw.Nodes, network.Node{Fanins: []int{3, 2}, Table: xor})
	or := bitset.New(4)
	or.Set(1)
	or.Set(2)
	or.Set(3)
	nw.Nodes = append(nw.Nodes, network.Node{Fanins: []int{4, 0}, Table: or})
	nw.AddPO(5)
	nw.AddPO(3)
	return nw
}

// The new semantic knobs must fragment the cache key — dc_mode and the
// window depths change which don't-cares a job can see, so two jobs
// differing in them must never share a cache entry (key impurity) —
// while parallelism and kernels must still collapse onto one entry
// (key purity).
func TestJobOptionsDCModeKeyImpurity(t *testing.T) {
	base := JobOptions{Method: "lcf", Threshold: 0.55}
	fragmenting := []JobOptions{
		{Method: "lcf", Threshold: 0.55, DCMode: "exhaustive"},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat"},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: 2},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: 3},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFO: 1},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: -1, WindowTFO: -1},
		{Method: "lcf", Threshold: 0.55, WindowTFI: 4},
	}
	seen := map[string]int{base.Key(): -1}
	for i, o := range fragmenting {
		k := o.Key()
		if j, ok := seen[k]; ok {
			t.Fatalf("options %d and %d collided (dc knobs must fragment the key)", i, j)
		}
		seen[k] = i
	}
	// Purity survives alongside the new fields: operational knobs still
	// collapse, and equivalent dc spellings collapse too.
	same := []JobOptions{
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: 2},
		{Method: "LCF", Threshold: 0.55, DCMode: " Windowed-SAT ", WindowTFI: 2},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: 2, Parallelism: 8},
		{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: 2, Kernels: "on"},
	}
	for i := 1; i < len(same); i++ {
		if same[i].Key() != same[0].Key() {
			t.Fatalf("equivalent options %d fragmented the key", i)
		}
	}
	// All negative depths are one spelling ("full depth").
	a := JobOptions{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: -1, WindowTFO: -2}
	b := JobOptions{Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: -7, WindowTFO: -1}
	if a.Key() != b.Key() {
		t.Fatal("negative window depths did not collapse to one key")
	}
	// Window depths are inert for the exhaustive engine.
	c := JobOptions{Method: "lcf", Threshold: 0.55, DCMode: "exhaustive", WindowTFI: 3, WindowTFO: 2}
	d := JobOptions{Method: "lcf", Threshold: 0.55, DCMode: "exhaustive"}
	if c.Key() != d.Key() {
		t.Fatal("window depths fragmented the key under dc_mode=exhaustive")
	}
}

func TestJobOptionsDCModeValidate(t *testing.T) {
	if err := (JobOptions{DCMode: "bogus"}).Normalize().Validate(); err == nil {
		t.Fatal("invalid dc_mode accepted")
	}
	for _, m := range []string{"", "auto", "exhaustive", "Windowed-SAT"} {
		if err := (JobOptions{DCMode: m}).Normalize().Validate(); err != nil {
			t.Fatalf("dc_mode %q rejected: %v", m, err)
		}
	}
	n := JobOptions{DCMode: "auto"}.Normalize()
	if n.DCMode != "" {
		t.Fatalf("auto did not normalize to empty, got %q", n.DCMode)
	}
}

func TestRunNetworkJobAutoExhaustive(t *testing.T) {
	nw := netTestNetwork(t)
	want := nw.POFunction()
	res, err := RunNetworkJob(context.Background(), nw, JobOptions{Method: "lcf", Threshold: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if res.DCMode != JobDCExhaustive {
		t.Fatalf("auto on a 3-PI network chose %q, want exhaustive", res.DCMode)
	}
	if res.Network == nil || !res.Equivalent {
		t.Fatalf("result incomplete: %+v", res)
	}
	if !res.Network.POFunction().Equal(want) {
		t.Fatal("exhaustive reassignment changed PO functions")
	}
	if res.LiteralsBefore <= 0 || res.LiteralsAfter <= 0 {
		t.Fatalf("literal counts not populated: %+v", res)
	}
	// The input network must not have been mutated (rungs run on clones).
	if !nw.POFunction().Equal(want) {
		t.Fatal("input network was mutated")
	}
}

func TestRunNetworkJobWindowed(t *testing.T) {
	nw := netTestNetwork(t)
	want := nw.POFunction()
	res, err := RunNetworkJob(context.Background(), nw, JobOptions{
		Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat", WindowTFI: 2, WindowTFO: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DCMode != JobDCWindowedSAT {
		t.Fatalf("dc_mode=%q, want windowed-sat", res.DCMode)
	}
	if !res.Equivalent || res.CECMethod == "" {
		t.Fatalf("windowed run not CEC-verified: %+v", res)
	}
	if res.Windows == 0 || res.SATCalls == 0 {
		t.Fatalf("windowed effort not reported: %+v", res)
	}
	if !res.Network.POFunction().Equal(want) {
		t.Fatal("windowed reassignment changed PO functions")
	}
}

// Regression for the satdc budget fix: a windowed extraction that runs
// out of SAT conflicts surfaces a typed sat.ErrBudget, which the ladder
// classifies as a budget failure and degrades to the exhaustive
// extraction — instead of the pre-fix behavior of hard-failing the job.
func TestRunNetworkJobLadderCatchesSATBudget(t *testing.T) {
	nw := netTestNetwork(t)
	want := nw.POFunction()
	opt := Options{Inject: func(point string) error {
		if point == "extract/windowed-sat" {
			return fmt.Errorf("injected mid-node exhaustion: %w", sat.ErrBudget)
		}
		return nil
	}}
	res, err := RunNetworkJobOpt(context.Background(), nw, JobOptions{
		Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat",
	}, opt)
	if err != nil {
		t.Fatalf("ladder did not absorb the SAT budget failure: %v", err)
	}
	if !res.Degraded || len(res.Fallbacks) != 1 {
		t.Fatalf("degradation not reported: %+v", res)
	}
	fb := res.Fallbacks[0]
	if fb.Stage != "extract" || fb.From != "extract/windowed-sat" ||
		fb.To != "extract/exhaustive" || fb.Reason != "budget" {
		t.Fatalf("fallback wrong: %+v", fb)
	}
	if res.DCMode != JobDCExhaustive {
		t.Fatalf("fallback rung %q, want exhaustive", res.DCMode)
	}
	if !res.Network.POFunction().Equal(want) {
		t.Fatal("fallback reassignment changed PO functions")
	}
}

// Strict mode disables the ladder: the same failure is returned as a
// budget StageError with the partial result still reporting the attempt.
func TestRunNetworkJobStrictSATBudget(t *testing.T) {
	nw := netTestNetwork(t)
	opt := Options{Strict: true, Inject: func(point string) error {
		if point == "extract/windowed-sat" {
			return fmt.Errorf("injected: %w", sat.ErrBudget)
		}
		return nil
	}}
	res, err := RunNetworkJobOpt(context.Background(), nw, JobOptions{
		Method: "lcf", Threshold: 0.55, DCMode: "windowed-sat",
	}, opt)
	if err == nil {
		t.Fatal("strict run absorbed a budget failure")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Reason != ReasonBudget || !errors.Is(err, sat.ErrBudget) {
		t.Fatalf("error not a sat.ErrBudget StageError: %v", err)
	}
	if res == nil || len(res.Stages) == 0 || res.Network != nil {
		t.Fatalf("partial result wrong: %+v", res)
	}
}

func TestRunNetworkJobRejectsNonLCF(t *testing.T) {
	nw := netTestNetwork(t)
	for _, m := range []string{"", "none", "rank", "complete"} {
		if _, err := RunNetworkJob(context.Background(), nw, JobOptions{Method: m, Fraction: 0.5}); err == nil {
			t.Fatalf("method %q accepted for a network job", m)
		}
	}
	if _, err := RunNetworkJob(context.Background(), nil, JobOptions{Method: "lcf", Threshold: 0.5}); err == nil {
		t.Fatal("nil network accepted")
	}
}
