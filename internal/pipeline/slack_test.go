//go:build !race

package pipeline_test

import "time"

// latencySlack is how far past its deadline a cancelled run may return:
// the acceptance bound for cooperative-cancellation granularity.
const latencySlack = 100 * time.Millisecond
