// Package bitset provides dense fixed-size bit vectors.
//
// A Set indexes minterms of an n-input Boolean function: bit i corresponds
// to the minterm whose binary encoding is i (input 0 is the least
// significant bit). All paper metrics (complexity factor, error rates,
// border counts) reduce to bulk operations over such sets, so the package
// favors word-at-a-time operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit vector. The zero value is an empty set of
// capacity 0; use New to allocate capacity. Operations that combine two
// sets require equal capacity and panic otherwise: mismatched capacities
// indicate mixing functions with different input counts, which is a
// programming error rather than a runtime condition.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Words exposes the backing words for read-only bulk scans.
// The final word's bits beyond Len are always zero.
func (s *Set) Words() []uint64 { return s.words }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to v.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// None reports whether the set is empty.
func (s *Set) None() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool { return !s.None() }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of o.
func (s *Set) Copy(o *Set) {
	s.mustMatch("bitset.Copy", o)
	copy(s.words, o.words)
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// FillAll sets all n bits.
func (s *Set) FillAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Trim re-masks the final word so that bits at and above Len are zero.
// Callers that write through Words() (bit-parallel simulators build
// truth tables word by word) must call Trim before handing the set to
// anything that counts bits.
func (s *Set) Trim() { s.trim() }

// mustMatch panics with a typed *SizeMismatchError (matching
// ErrSizeMismatch via errors.Is) when the two sets were built for
// different universe sizes.
func (s *Set) mustMatch(op string, o *Set) {
	if s.n != o.n {
		panic(NewSizeMismatch(op, s.n, o.n))
	}
}

// InPlaceUnion sets s = s | o.
func (s *Set) InPlaceUnion(o *Set) {
	s.mustMatch("bitset.InPlaceUnion", o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// InPlaceIntersect sets s = s & o.
func (s *Set) InPlaceIntersect(o *Set) {
	s.mustMatch("bitset.InPlaceIntersect", o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// InPlaceDifference sets s = s &^ o.
func (s *Set) InPlaceDifference(o *Set) {
	s.mustMatch("bitset.InPlaceDifference", o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// InPlaceSymDiff sets s = s ^ o.
func (s *Set) InPlaceSymDiff(o *Set) {
	s.mustMatch("bitset.InPlaceSymDiff", o)
	for i, w := range o.words {
		s.words[i] ^= w
	}
}

// Union returns s | o as a new set.
func (s *Set) Union(o *Set) *Set {
	c := s.Clone()
	c.InPlaceUnion(o)
	return c
}

// Intersect returns s & o as a new set.
func (s *Set) Intersect(o *Set) *Set {
	c := s.Clone()
	c.InPlaceIntersect(o)
	return c
}

// Difference returns s &^ o as a new set.
func (s *Set) Difference(o *Set) *Set {
	c := s.Clone()
	c.InPlaceDifference(o)
	return c
}

// Complement returns the complement of s within its capacity.
func (s *Set) Complement() *Set {
	c := s.Clone()
	for i := range c.words {
		c.words[i] = ^c.words[i]
	}
	c.trim()
	return c
}

// IntersectsWith reports whether s & o is non-empty.
func (s *Set) IntersectsWith(o *Set) bool {
	s.mustMatch("bitset.IntersectsWith", o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s & o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	s.mustMatch("bitset.IntersectionCount", o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// SubsetOf reports whether every bit of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch("bitset.SubsetOf", o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets hold identical bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Indices returns the indices of all set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ShiftXor returns a new set t with t[i] = s[i XOR 1<<bit]; that is, each
// minterm is mapped to its 1-Hamming neighbor along input `bit`. Since
// XOR with a power of two is an involution, applying ShiftXor twice yields
// the original set. For bit < 6 the permutation acts inside each word and
// is computed with masked shifts; for larger bits it swaps whole words.
func (s *Set) ShiftXor(bit int) *Set {
	s.checkShift("ShiftXor", bit)
	c := New(s.n)
	ShiftNeighborInto(c, s, bit)
	return c
}

// VarPattern returns the set of indices i in [0,n) whose bit v is 1 —
// the truth table of input variable v over a 2^k minterm space. n must be
// a power of two with v < log2(n).
func VarPattern(n, v int) *Set {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bitset: VarPattern requires power-of-two capacity, got %d", n))
	}
	if v < 0 || 1<<uint(v) >= n {
		panic(fmt.Sprintf("bitset: VarPattern bit %d out of range for capacity %d", v, n))
	}
	s := New(n)
	if v < 6 {
		pat := ^xorMasks[v] // bits where bit v of the index is 1
		for i := range s.words {
			s.words[i] = pat
		}
	} else {
		stride := 1 << uint(v-6)
		for i := range s.words {
			if i&stride != 0 {
				s.words[i] = ^uint64(0)
			}
		}
	}
	s.trim()
	return s
}

// xorMasks[b] has a 1 in bit position i iff bit b of i is 0, for b in [0,6).
var xorMasks = [6]uint64{
	0x5555555555555555,
	0x3333333333333333,
	0x0f0f0f0f0f0f0f0f,
	0x00ff00ff00ff00ff,
	0x0000ffff0000ffff,
	0x00000000ffffffff,
}

// String renders the set as indices, e.g. "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
