// One-pass fused neighbor census.
//
// Every spec-side paper metric — ranking weights, LC^f numerators, the
// exact reliability bounds, border counts, C^f — is a function of the
// same three per-minterm quantities: how many of a minterm's k 1-Hamming
// neighbors lie in the on-set, the off-set, and the DC set. Before this
// engine each metric re-derived its census with its own
// ShiftNeighbor/popcount pass over the same bitsets; a Census computes
// all three bit-sliced counters in a single pass over the input bits and
// every consumer reduces to plane lookups and masked plane sums.
//
// The reductions (all exact integer identities, so the fused results are
// bit-identical to the per-metric kernels and the scalar oracles):
//
//	base pairs     = 2·Σ_{m∈on} offCnt[m]
//	min/max pairs  = Σ_{m∈dc} min/max(onCnt[m], offCnt[m])
//	border B1      = Σ_{m∈on} (k − onCnt[m])      (B0, BDC analogous)
//	C^f numerator  = Σ_{m∈on} onCnt[m] + Σ_{m∈dc} dcCnt[m] + Σ_{m∈off} offCnt[m]
//	error events   = Σ_{m∈v∖excl} (k − vCnt[m]) + Σ_{m∈care∖v} vCnt[m]
//
// The masked plane sums run cache-blocked (see popcount.go): the mask
// block is walked once per counter plane while it is still resident,
// instead of streaming the full mask per plane.
//
// A Census snapshots its inputs: the on/dc sets are cloned at build
// time, so later in-place DC assignment on the source function cannot
// corrupt a cached census. Consumers therefore always see spec-time
// counts, which is exactly the contract the assignment oracles already
// relied on (they too snapshot their censuses before mutating).
package bitset

import (
	"fmt"
	"math/bits"
)

// Census is the fused neighbor census of one output: for every minterm
// m of a 2^k space, how many of its k 1-Hamming neighbors are in the
// on-set, off-set and DC set, stored as bit-sliced Counters. It is
// immutable after construction and safe for concurrent readers.
type Census struct {
	n int // minterm-space size (2^k)
	k int // input count

	on, dc, off *Set // cloned phase sets (off derived: ~(on|dc))

	onCnt, offCnt, dcCnt *Counter

	// Derived read-only arrays, precomputed at build time so every
	// cache hit serves them for free: the decoded on/off neighbor
	// counts (the assignment oracles and DC pair bounds read every DC
	// minterm, so per-query plane gathers were the hot path) and the
	// two-step same-phase fold (the LC^f numerators, whose rebuild
	// per call was the last neighbor-pass-shaped cost left in the
	// fused lane). All three are charged to Bytes().
	onVals, offVals []uint8
	foldVals        []uint16
}

// NewCensus builds the census of an output from its on-set and DC set
// in one fused pass over the k input bits. The capacity must be a
// power of two (it is a minterm space); on and dc must not intersect —
// that invariant is owned by tt.Function.Validate and is not re-checked
// here.
func NewCensus(on, dc *Set) *Census {
	on.checkShift("NewCensus", 0)
	on.mustMatch("bitset.NewCensus", dc)
	n := on.n
	k := bits.Len(uint(n - 1))
	if n == 1 {
		k = 0
	}
	off := on.Union(dc)
	for i := range off.words {
		off.words[i] = ^off.words[i]
	}
	off.trim()
	max := k
	if max < 1 {
		max = 1
	}
	c := &Census{
		n:      n,
		k:      k,
		on:     on.Clone(),
		dc:     dc.Clone(),
		off:    off,
		onCnt:  NewCounter(n, max),
		offCnt: NewCounter(n, max),
		dcCnt:  NewCounter(n, max),
	}
	for b := 0; b < k; b++ {
		c.onCnt.AddShifted(c.on, b)
		c.dcCnt.AddShifted(c.dc, b)
		c.offCnt.AddShifted(off, b)
	}
	c.buildDerived()
	return c
}

// buildDerived materializes the precomputed reduction arrays from the
// counters: decoded on/off counts and the LC^f fold. Deterministic
// from the counters, so the wire path rebuilds rather than ships them.
func (c *Census) buildDerived() {
	c.onVals = c.onCnt.Values8()
	c.offVals = c.offCnt.Values8()
	sp := c.SamePhaseCounter()
	maxv := c.k * c.k
	if maxv < 1 {
		maxv = 1
	}
	fold := NewCounter(c.n, maxv)
	for b := 0; b < c.k; b++ {
		for p := range sp.planes {
			fold.AddShiftedAtLevel(sp.planes[p], b, p)
		}
	}
	c.foldVals = fold.Values16()
}

// NewCensusFromParts reassembles a census from deserialized pieces
// (the peer-fill wire path): the phase sets plus the three neighbor
// counters, all validated for shape. The off-set is rederived from
// on|dc rather than trusted from the wire, and on/dc are cloned, so
// the caller's buffers stay independent. Shape is validated; counter
// *contents* are trusted — a peer-supplied census with wrong counts
// yields wrong metrics on the receiving shard, which is why receivers
// gate primes behind an exact on/dc match against the local spec.
func NewCensusFromParts(on, dc *Set, onCnt, offCnt, dcCnt *Counter) *Census {
	on.checkShift("NewCensusFromParts", 0)
	on.mustMatch("bitset.NewCensusFromParts", dc)
	n := on.n
	k := bits.Len(uint(n - 1))
	if n == 1 {
		k = 0
	}
	planes := bits.Len(uint(max2(k, 1)))
	for _, cnt := range []*Counter{onCnt, offCnt, dcCnt} {
		if cnt.n != n {
			panic(NewSizeMismatch("bitset.NewCensusFromParts", n, cnt.n))
		}
		if len(cnt.planes) != planes {
			panic(fmt.Sprintf("bitset: census counter has %d planes, want %d", len(cnt.planes), planes))
		}
	}
	off := on.Union(dc)
	for i := range off.words {
		off.words[i] = ^off.words[i]
	}
	off.trim()
	c := &Census{
		n: n, k: k,
		on: on.Clone(), dc: dc.Clone(), off: off,
		onCnt: onCnt, offCnt: offCnt, dcCnt: dcCnt,
	}
	c.buildDerived()
	return c
}

// NewCounterFromPlanes wraps deserialized bit planes as a counter.
// Plane 0 is least significant; every plane must have capacity n.
func NewCounterFromPlanes(n int, planes []*Set) *Counter {
	if len(planes) == 0 {
		panic("bitset: counter needs at least one plane")
	}
	for _, p := range planes {
		if p.n != n {
			panic(NewSizeMismatch("bitset.NewCounterFromPlanes", n, p.n))
		}
	}
	return &Counter{n: n, planes: planes}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Len returns the minterm-space size (2^K).
func (c *Census) Len() int { return c.n }

// K returns the input count.
func (c *Census) K() int { return c.k }

// On, DC and Off return the census's snapshot of the phase sets. The
// returned sets are live views of the census's internal state and must
// not be mutated.
func (c *Census) On() *Set  { return c.on }
func (c *Census) DC() *Set  { return c.dc }
func (c *Census) Off() *Set { return c.off }

// OnCounter, OffCounter and DCCounter return the bit-sliced neighbor
// counters. Read-only: mutating the planes corrupts the census.
func (c *Census) OnCounter() *Counter  { return c.onCnt }
func (c *Census) OffCounter() *Counter { return c.offCnt }
func (c *Census) DCCounter() *Counter  { return c.dcCnt }

// OnAt, OffAt and DCAt return the per-minterm neighbor counts. On and
// off reads come from the precomputed arrays; DC counts are queried
// rarely enough that they stay plane-gathered.
func (c *Census) OnAt(m int) int  { return int(c.onVals[m]) }
func (c *Census) OffAt(m int) int { return int(c.offVals[m]) }
func (c *Census) DCAt(m int) int  { return c.dcCnt.Get(m) }

// OnValues and OffValues return the decoded per-minterm on/off
// neighbor counts — shared read-only arrays; callers must not mutate.
func (c *Census) OnValues() []uint8  { return c.onVals }
func (c *Census) OffValues() []uint8 { return c.offVals }

// SamePhaseFold returns the precomputed two-step same-phase fold
// L[m] = Σ_b SP[m ^ 2^b], where SP is the SamePhaseCounter — the
// integer LC^f numerators, bounded by k². Shared read-only array.
func (c *Census) SamePhaseFold() []uint16 { return c.foldVals }

// BasePairs counts the ordered (minterm, bit) events where a care
// minterm and its neighbor hold opposite definite phases — the
// always-propagating pair count at the bottom of the exact reliability
// bounds. Each unordered on/off adjacency propagates in both
// directions, hence the factor two.
func (c *Census) BasePairs() int {
	return 2 * maskedPlaneSum(c.offCnt, c.on)
}

// DCPairBounds returns Σ_{m∈dc} min(onCnt, offCnt) and
// Σ_{m∈dc} max(onCnt, offCnt): the best- and worst-case propagating
// pairs contributed by the DC minterms over every completion.
func (c *Census) DCPairBounds() (minPairs, maxPairs int) {
	// Array reads per DC minterm from the precomputed decodes — the
	// per-minterm Get pair was the dominant cost of this reduction.
	on, off := c.onVals, c.offVals
	c.dc.ForEach(func(m int) {
		a, b := int(on[m]), int(off[m])
		if a < b {
			minPairs += a
			maxPairs += b
		} else {
			minPairs += b
			maxPairs += a
		}
	})
	return minPairs, maxPairs
}

// Borders returns the ordered boundary sizes of the three phase
// regions: b0 counts (m, bit) events where m is in the off-set and its
// neighbor is not, b1 the same for the on-set, bdc for the DC set. A
// minterm's out-of-region neighbor count is k minus its same-region
// census, so each border reduces to one masked plane sum.
func (c *Census) Borders() (b0, b1, bdc int) {
	b0 = c.k*c.off.Count() - maskedPlaneSum(c.offCnt, c.off)
	b1 = c.k*c.on.Count() - maskedPlaneSum(c.onCnt, c.on)
	bdc = c.k*c.dc.Count() - maskedPlaneSum(c.dcCnt, c.dc)
	return b0, b1, bdc
}

// SamePhasePairs counts the ordered (minterm, bit) events where the
// minterm and its neighbor are in the same phase region — the C^f
// numerator.
func (c *Census) SamePhasePairs() int {
	return maskedPlaneSum(c.onCnt, c.on) +
		maskedPlaneSum(c.dcCnt, c.dc) +
		maskedPlaneSum(c.offCnt, c.off)
}

// SamePhaseCounter assembles the per-minterm same-phase census (the
// LC^f fold input): position m holds its phase region's neighbor count.
// Built by masking each counter plane with its phase set — no neighbor
// pass — since the three regions partition the space. The returned
// counter is freshly allocated and owned by the caller.
func (c *Census) SamePhaseCounter() *Counter {
	sp := &Counter{n: c.n, planes: make([]*Set, len(c.onCnt.planes))}
	for p := range sp.planes {
		s := New(c.n)
		onW, dcW, offW := c.onCnt.planes[p].words, c.dcCnt.planes[p].words, c.offCnt.planes[p].words
		for i := range s.words {
			s.words[i] = onW[i]&c.on.words[i] | dcW[i]&c.dc.words[i] | offW[i]&c.off.words[i]
		}
		sp.planes[p] = s
	}
	return sp
}

// DiffEvents counts the (minterm, bit) events outside excl where the
// census's on-set — read as a completely specified value vector v —
// disagrees with its neighbor: exactly what
// Set.NeighborDiffAndNotPopcountAll(excl) scans for, recovered here
// from the census without another neighbor pass. A set minterm
// disagrees with k−vCnt[m] neighbors, a clear one with vCnt[m].
func (c *Census) DiffEvents(excl *Set) int {
	c.on.mustMatch("bitset.Census.DiffEvents", excl)
	set := c.on.Difference(excl)
	clear := c.on.Union(excl)
	for i := range clear.words {
		clear.words[i] = ^clear.words[i]
	}
	clear.trim()
	return c.k*set.Count() - maskedPlaneSum(c.onCnt, set) + maskedPlaneSum(c.onCnt, clear)
}

// Bytes reports the census's approximate resident size: the backing
// words of the three phase sets and the three counters' planes, plus
// the precomputed decode and fold arrays. It is the size function the
// census cache's byte accounting charges.
func (c *Census) Bytes() int {
	words := len(c.on.words) + len(c.dc.words) + len(c.off.words)
	for _, cnt := range []*Counter{c.onCnt, c.offCnt, c.dcCnt} {
		for _, p := range cnt.planes {
			words += len(p.words)
		}
	}
	return words*8 + len(c.onVals) + len(c.offVals) + 2*len(c.foldVals)
}
