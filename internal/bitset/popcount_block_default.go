//go:build !amd64.v3

package bitset

// popcountBlockWords is the blocked-reduction tile in words. 512 words
// = 4 KiB per plane block plus 4 KiB of mask: two blocks fit any L1
// data cache alongside the accumulators, and the mask block survives a
// full plane sweep.
const popcountBlockWords = 512
