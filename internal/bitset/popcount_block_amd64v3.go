//go:build amd64.v3

package bitset

// popcountBlockWords for GOAMD64=v3 builds. v3 guarantees POPCNT (the
// compiler drops the runtime feature branch around OnesCount64, so the
// unrolled lanes issue back to back) and v3-class cores carry ≥512 KiB
// of private L2, so the tile doubles: 8 KiB of mask block amortizes
// over each plane sweep with room to spare.
const popcountBlockWords = 1024
