// Word-parallel (SWAR) kernels for the Θ(n·2^n) hot loops.
//
// Every paper metric — masked-error rates, complexity factors, border
// counts — reduces to scans that relate each minterm m to its 1-Hamming
// neighbor m^2^i. Over a dense bitset that neighbor permutation is just
// a shift of the whole vector: for 2^i < 64 it acts inside each word as
// a pair of masked shifts, above that it swaps whole words. Composing
// the shift with fused popcounts turns per-minterm loops into
// 64-minterms-per-op passes, the same packed-simulation trick ABC uses
// for bit-parallel truth-table evaluation.
//
// The kernels in this file never change results: the scalar
// implementations in internal/{reliability,complexity,estimate,exact,
// core} are kept under *Scalar names and remain the oracle (metatest
// property 6 pins kernel ≡ scalar bit for bit). UseKernels is the
// process-wide escape hatch.
package bitset

import (
	"errors"
	"fmt"
	"math/bits"
)

// UseKernels is the process-wide default for the word-parallel kernel
// paths in the metric packages (reliability, complexity, estimate,
// exact, core). It exists as an operational escape hatch: flipping it
// to false routes every dispatching entry point through the scalar
// oracle implementations, which compute bit-identical results ~8–30×
// slower. Set it at process start (relsyn -kernels=false, relsynd
// -kernels=false), before any concurrent work begins; it is a plain
// bool and is not synchronized.
var UseKernels = true

// ErrSizeMismatch is the sentinel matched (via errors.Is) by the
// *SizeMismatchError panics raised when two sets built for different
// universe sizes are combined. Binary ops used to panic with an
// anonymous formatted string, which recovery boundaries (the pipeline
// recovers library panics into typed *StageError values) could not
// classify, and raw Words()-level loops outside this package silently
// truncated to the shorter word slice instead of failing at all.
var ErrSizeMismatch = errors.New("bitset: size mismatch")

// SizeMismatchError reports a binary operation over two sets with
// different capacities. It is raised by panic: mixing universe sizes
// means mixing functions with different input counts, which is a
// programming error, not a runtime condition.
type SizeMismatchError struct {
	Op   string // the operation, e.g. "bitset.AndPopcount"
	A, B int    // the two capacities involved
}

func (e *SizeMismatchError) Error() string {
	return fmt.Sprintf("%s: %v: %d vs %d bits", e.Op, ErrSizeMismatch, e.A, e.B)
}

// Unwrap lets errors.Is(err, ErrSizeMismatch) match recovered panics.
func (e *SizeMismatchError) Unwrap() error { return ErrSizeMismatch }

// NewSizeMismatch builds the typed error for callers outside this
// package that combine raw word slices and must fail loudly instead of
// truncating (see internal/faultsim).
func NewSizeMismatch(op string, a, b int) *SizeMismatchError {
	return &SizeMismatchError{Op: op, A: a, B: b}
}

// checkShift validates the neighbor-permutation preconditions shared by
// ShiftXor, ShiftNeighbor and the fused kernels: power-of-two capacity
// and a bit index inside the input count.
func (s *Set) checkShift(op string, bit int) {
	if s.n == 0 || s.n&(s.n-1) != 0 {
		panic(fmt.Sprintf("bitset: %s requires power-of-two capacity, got %d", op, s.n))
	}
	if bit < 0 || (s.n > 1 && bit >= bits.Len(uint(s.n-1))) {
		panic(fmt.Sprintf("bitset: %s bit %d out of range for capacity %d", op, bit, s.n))
	}
}

// ShiftNeighbor returns a new set t with t[m] = s[m ^ 2^bit]: every
// minterm mapped to its 1-Hamming neighbor along input `bit`. It is the
// primitive the word-parallel kernels are built from; ShiftXor is the
// historical name for the same permutation.
func (s *Set) ShiftNeighbor(bit int) *Set {
	s.checkShift("ShiftNeighbor", bit)
	c := New(s.n)
	ShiftNeighborInto(c, s, bit)
	return c
}

// ShiftNeighborInto writes the neighbor permutation of src along input
// `bit` into dst without allocating. dst must have src's capacity and
// must not alias src (for 2^bit >= 64 the permutation swaps whole words
// and an in-place swap would read already-overwritten words).
func ShiftNeighborInto(dst, src *Set, bit int) {
	src.checkShift("ShiftNeighborInto", bit)
	if dst.n != src.n {
		panic(NewSizeMismatch("bitset.ShiftNeighborInto", dst.n, src.n))
	}
	if dst == src {
		panic("bitset: ShiftNeighborInto dst must not alias src")
	}
	if bit < 6 {
		sh := uint(1) << uint(bit)
		mask := xorMasks[bit]
		for i, w := range src.words {
			// Bits whose `bit` is 0 move up by sh; bits whose `bit` is 1 move down.
			dst.words[i] = (w&mask)<<sh | (w>>sh)&mask
		}
	} else {
		stride := 1 << uint(bit-6) // distance in words
		for i := range src.words {
			dst.words[i] = src.words[i^stride]
		}
	}
	dst.trim()
}

// AndPopcount returns |s & o| in one fused pass (no intermediate set).
func (s *Set) AndPopcount(o *Set) int {
	s.mustMatch("bitset.AndPopcount", o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// XorPopcount returns |s ^ o| — the Hamming distance between the two
// sets — in one fused pass.
func (s *Set) XorPopcount(o *Set) int {
	s.mustMatch("bitset.XorPopcount", o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] ^ w)
	}
	return c
}

// AndNotPopcount returns |s &^ o| in one fused pass.
func (s *Set) AndNotPopcount(o *Set) int {
	s.mustMatch("bitset.AndNotPopcount", o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] &^ w)
	}
	return c
}

// ShiftAndPopcount returns |s & ShiftNeighbor(o, bit)| without
// materializing the shifted set: the per-word shift is fused into the
// popcount pass. This is the border-count / base-pair workhorse.
func (s *Set) ShiftAndPopcount(o *Set, bit int) int {
	o.checkShift("ShiftAndPopcount", bit)
	s.mustMatch("bitset.ShiftAndPopcount", o)
	c := 0
	if bit < 6 {
		sh := uint(1) << uint(bit)
		mask := xorMasks[bit]
		for i, w := range o.words {
			c += bits.OnesCount64(s.words[i] & ((w&mask)<<sh | (w>>sh)&mask))
		}
	} else {
		stride := 1 << uint(bit-6)
		for i := range s.words {
			c += bits.OnesCount64(s.words[i] & o.words[i^stride])
		}
	}
	return c
}

// NeighborDiffPopcount returns |{m ∈ care : s[m] != s[m ^ 2^bit]}| —
// the number of care minterms whose value changes when input `bit`
// flips — in one fused pass. This is the error-rate workhorse:
// summing it over all inputs counts every propagating (minterm, bit)
// event without n·2^n phase lookups.
func (s *Set) NeighborDiffPopcount(care *Set, bit int) int {
	s.checkShift("NeighborDiffPopcount", bit)
	s.mustMatch("bitset.NeighborDiffPopcount", care)
	c := 0
	if bit < 6 {
		sh := uint(1) << uint(bit)
		mask := xorMasks[bit]
		cw := care.words[:len(s.words)] // bounds-check elimination
		for i, w := range s.words {
			c += bits.OnesCount64((w ^ ((w&mask)<<sh | (w>>sh)&mask)) & cw[i])
		}
	} else {
		// The value difference w_i ^ w_{i^stride} is symmetric in the
		// pair, so compute each XOR once and mask it against both care
		// words (half the loads and XORs of the naive per-word loop).
		// The block sub-slices let the compiler drop bounds checks.
		stride := 1 << uint(bit-6)
		cw, sw := care.words, s.words
		for base := 0; base < len(sw); base += 2 * stride {
			lo, hi := sw[base:base+stride], sw[base+stride:base+2*stride]
			clo, chi := cw[base:base+stride], cw[base+stride:base+2*stride]
			for i, w := range lo {
				x := w ^ hi[i]
				c += bits.OnesCount64(x&clo[i]) + bits.OnesCount64(x&chi[i])
			}
		}
	}
	return c
}

// NeighborDiffAndNotPopcount is NeighborDiffPopcount with the care set
// expressed as its complement: it returns
// |{m ∉ excl : s[m] != s[m ^ 2^bit]}|. The error-rate scan cares about
// everything outside the DC set, so taking the DC set directly avoids
// materializing a complemented care set per call. Padding bits are
// safe without trimming: the XOR of two trimmed words is trimmed, and
// the neighbor permutation maps padding positions to padding positions.
func (s *Set) NeighborDiffAndNotPopcount(excl *Set, bit int) int {
	s.checkShift("NeighborDiffAndNotPopcount", bit)
	s.mustMatch("bitset.NeighborDiffAndNotPopcount", excl)
	c := 0
	if bit < 6 {
		sh := uint(1) << uint(bit)
		mask := xorMasks[bit]
		ew := excl.words[:len(s.words)] // bounds-check elimination
		for i, w := range s.words {
			c += bits.OnesCount64((w ^ ((w&mask)<<sh | (w>>sh)&mask)) &^ ew[i])
		}
	} else {
		stride := 1 << uint(bit-6)
		ew, sw := excl.words, s.words
		for base := 0; base < len(sw); base += 2 * stride {
			lo, hi := sw[base:base+stride], sw[base+stride:base+2*stride]
			elo, ehi := ew[base:base+stride], ew[base+stride:base+2*stride]
			for i, w := range lo {
				x := w ^ hi[i]
				c += bits.OnesCount64(x&^elo[i]) + bits.OnesCount64(x&^ehi[i])
			}
		}
	}
	return c
}

// NeighborDiffAndNotPopcountAll sums NeighborDiffAndNotPopcount over
// every input bit: |{(m, b) : m ∉ excl, s[m] != s[m ^ 2^b]}| — the full
// error-event count of one output in a single call. The six in-word
// bits share one fully unrolled pass (each word and its exclusion mask
// are loaded once and feed six shift+popcount lanes), and every
// word-swap bit reuses the symmetric-pair halving of the per-bit
// kernel. This is what the error-rate scan calls; the per-bit
// NeighborDiffAndNotPopcount remains for callers that need the
// per-input breakdown.
func (s *Set) NeighborDiffAndNotPopcountAll(excl *Set) int {
	s.checkShift("NeighborDiffAndNotPopcountAll", 0)
	s.mustMatch("bitset.NeighborDiffAndNotPopcountAll", excl)
	k := bits.Len(uint(s.n - 1))
	if s.n == 1 {
		k = 0
	}
	c := 0
	if s.n >= 64 {
		// All six in-word bits in one pass.
		ew := excl.words[:len(s.words)]
		for i, w := range s.words {
			keep := ^ew[i]
			c += bits.OnesCount64((w^((w&xorMasks[0])<<1|(w>>1)&xorMasks[0]))&keep) +
				bits.OnesCount64((w^((w&xorMasks[1])<<2|(w>>2)&xorMasks[1]))&keep) +
				bits.OnesCount64((w^((w&xorMasks[2])<<4|(w>>4)&xorMasks[2]))&keep) +
				bits.OnesCount64((w^((w&xorMasks[3])<<8|(w>>8)&xorMasks[3]))&keep) +
				bits.OnesCount64((w^((w&xorMasks[4])<<16|(w>>16)&xorMasks[4]))&keep) +
				bits.OnesCount64((w^((w&xorMasks[5])<<32|(w>>32)&xorMasks[5]))&keep)
		}
	} else {
		for b := 0; b < k; b++ {
			c += s.NeighborDiffAndNotPopcount(excl, b)
		}
		return c
	}
	for b := 6; b < k; b++ {
		c += s.NeighborDiffAndNotPopcount(excl, b)
	}
	return c
}

// KernelScratch is a small arena of reusable sets for allocation-free
// kernel loops: a scan that needs shifted or composed intermediates
// grabs numbered slots instead of allocating 2^n-bit sets per input
// bit. Slots are lazily allocated at the scratch's capacity and their
// contents are unspecified between uses; a KernelScratch is not safe
// for concurrent use.
type KernelScratch struct {
	n     int
	slots []*Set
}

// NewKernelScratch returns a scratch arena for n-bit sets.
func NewKernelScratch(n int) *KernelScratch {
	if n < 0 {
		panic("bitset: negative scratch capacity")
	}
	return &KernelScratch{n: n}
}

// Scratch returns slot i, allocating it on first use. The returned set
// is owned by the scratch: it stays valid until the next call that
// asks for the same slot, and must not escape the kernel loop.
func (k *KernelScratch) Scratch(i int) *Set {
	if i < 0 {
		panic("bitset: negative scratch slot")
	}
	for len(k.slots) <= i {
		k.slots = append(k.slots, nil)
	}
	if k.slots[i] == nil {
		k.slots[i] = New(k.n)
	}
	return k.slots[i]
}

// ShiftNeighbor shifts src along input `bit` into scratch slot i and
// returns the slot.
func (k *KernelScratch) ShiftNeighbor(i int, src *Set, bit int) *Set {
	dst := k.Scratch(i)
	ShiftNeighborInto(dst, src, bit)
	return dst
}

// Counter is a bit-sliced (vertical SWAR) counter: one small unsigned
// counter per position of a 2^k minterm space, stored as bit planes so
// that 64 counters are updated per word operation. It is how the
// kernels recover *per-minterm* quantities (neighbor censuses, local
// complexity numerators) that a popcount alone cannot: adding a 0/1
// set into the counter is a ripple-carry across the planes.
type Counter struct {
	n      int
	planes []*Set
}

// NewCounter returns a counter over an n-position space that can hold
// values up to max in every position. Exceeding max panics ("counter
// overflow"): a silent wrap would corrupt metric results.
func NewCounter(n, max int) *Counter {
	if max < 1 {
		panic(fmt.Sprintf("bitset: counter max %d < 1", max))
	}
	c := &Counter{n: n, planes: make([]*Set, bits.Len(uint(max)))}
	for i := range c.planes {
		c.planes[i] = New(n)
	}
	return c
}

// Len returns the number of positions.
func (c *Counter) Len() int { return c.n }

// NumPlanes returns the number of bit planes (the counter width).
func (c *Counter) NumPlanes() int { return len(c.planes) }

// Plane returns bit plane p (plane 0 is the least significant). The
// returned set is live: mutating it mutates the counter.
func (c *Counter) Plane(p int) *Set { return c.planes[p] }

// addWordAt ripple-carries the 0/1-per-position word x into word wi of
// the planes, entering at plane `level` (i.e. adding x·2^level).
func (c *Counter) addWordAt(wi int, x uint64, level int) {
	for p := level; p < len(c.planes); p++ {
		if x == 0 {
			return
		}
		carry := c.planes[p].words[wi] & x
		c.planes[p].words[wi] ^= x
		x = carry
	}
	if x != 0 {
		panic("bitset: counter overflow")
	}
}

// Add increments every position m by s[m].
func (c *Counter) Add(s *Set) {
	if s.n != c.n {
		panic(NewSizeMismatch("bitset.Counter.Add", c.n, s.n))
	}
	for wi, w := range s.words {
		c.addWordAt(wi, w, 0)
	}
}

// AddShifted increments every position m by s[m ^ 2^bit], fusing the
// neighbor shift into the carry pass.
func (c *Counter) AddShifted(s *Set, bit int) { c.AddShiftedAtLevel(s, bit, 0) }

// AddShiftedAtLevel increments every position m by s[m ^ 2^bit]·2^level.
// Weighted adds let one counter fold another counter's planes: plane p
// of a census counter enters at level p.
func (c *Counter) AddShiftedAtLevel(s *Set, bit, level int) {
	s.checkShift("Counter.AddShiftedAtLevel", bit)
	if s.n != c.n {
		panic(NewSizeMismatch("bitset.Counter.AddShiftedAtLevel", c.n, s.n))
	}
	if level < 0 || level >= len(c.planes) {
		panic(fmt.Sprintf("bitset: counter level %d outside [0,%d)", level, len(c.planes)))
	}
	if bit < 6 {
		sh := uint(1) << uint(bit)
		mask := xorMasks[bit]
		for wi, w := range s.words {
			c.addWordAt(wi, (w&mask)<<sh|(w>>sh)&mask, level)
		}
	} else {
		stride := 1 << uint(bit-6)
		for wi := range s.words {
			c.addWordAt(wi, s.words[wi^stride], level)
		}
	}
}

// ValuesInto decodes every counter position into dst (whose length
// must be at least c.n) and returns dst[:c.n]. The decode is
// plane-sliced per 64-position lane: each plane word is loaded once and
// its set bits scattered with trailing-zero iteration, so the cost is
// proportional to the number of one-bits across planes (~the average
// binary weight of the counts) instead of planes × positions with a
// bounds-checked Get call per position. Streaming consumers that read
// every position — the LC^f normalize, census reductions — are
// Get-call-bound without it on n≥14 truth tables.
func (c *Counter) ValuesInto(dst []int) []int {
	if len(dst) < c.n {
		panic(fmt.Sprintf("bitset: ValuesInto dst length %d < %d", len(dst), c.n))
	}
	dst = dst[:c.n]
	for i := range dst {
		dst[i] = 0
	}
	for p := range c.planes {
		words := c.planes[p].words
		for wi, w := range words {
			base := wi * wordBits
			for w != 0 {
				b := bits.TrailingZeros64(w)
				dst[base+b] |= 1 << uint(p)
				w &= w - 1
			}
		}
	}
	return dst
}

// decodePlanes is the allocation-owning core of Values8/Values16: one
// trailing-zero scatter pass per plane into a fresh zeroed array, same
// shape as ValuesInto but at the narrowest element width the counter's
// value bound permits.
func decodePlanes[T uint8 | uint16](n int, planes []*Set) []T {
	dst := make([]T, n)
	for p := range planes {
		words := planes[p].words
		for wi, w := range words {
			base := wi * wordBits
			for w != 0 {
				b := bits.TrailingZeros64(w)
				dst[base+b] |= 1 << uint(p)
				w &= w - 1
			}
		}
	}
	return dst
}

// Values8 decodes every counter position into a fresh byte array —
// the compact form of ValuesInto for counters whose values fit eight
// planes. Every neighbor census qualifies (counts are bounded by the
// input count); wider counters panic rather than truncate.
func (c *Counter) Values8() []uint8 {
	if len(c.planes) > 8 {
		panic(fmt.Sprintf("bitset: Values8 on %d-plane counter", len(c.planes)))
	}
	return decodePlanes[uint8](c.n, c.planes)
}

// Values16 is Values8 for counters up to sixteen planes — wide enough
// for the LC^f two-step fold, whose values are bounded by k².
func (c *Counter) Values16() []uint16 {
	if len(c.planes) > 16 {
		panic(fmt.Sprintf("bitset: Values16 on %d-plane counter", len(c.planes)))
	}
	return decodePlanes[uint16](c.n, c.planes)
}

// Get returns the counter value at position m.
func (c *Counter) Get(m int) int {
	if m < 0 || m >= c.n {
		panic(fmt.Sprintf("bitset: counter index %d out of range [0,%d)", m, c.n))
	}
	wi, b := m/wordBits, uint(m)%wordBits
	v := 0
	for p := range c.planes {
		v |= int(c.planes[p].words[wi]>>b&1) << p
	}
	return v
}

// NeighborCount returns, for every position m, how many of the k
// 1-Hamming neighbors of m (k = log2(s.Len())) are set in s — the
// word-parallel form of the per-minterm neighbor census that the
// ranking weights and exact DC-pair bounds are built on.
func NeighborCount(s *Set) *Counter {
	s.checkShift("NeighborCount", 0)
	k := bits.Len(uint(s.n - 1))
	if s.n == 1 {
		k = 0
	}
	max := k
	if max < 1 {
		max = 1
	}
	c := NewCounter(s.n, max)
	for b := 0; b < k; b++ {
		c.AddShifted(s, b)
	}
	return c
}
