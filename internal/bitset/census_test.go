package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
)

// randomPhases deals each minterm of a 2^k space into on/dc/off with
// the given DC weight.
func randomPhases(k int, dcFrac float64, seed int64) (on, dc *Set) {
	n := 1 << uint(k)
	rng := rand.New(rand.NewSource(seed))
	on, dc = New(n), New(n)
	for m := 0; m < n; m++ {
		switch r := rng.Float64(); {
		case r < dcFrac:
			dc.Set(m)
		case rng.Intn(2) == 0:
			on.Set(m)
		}
	}
	return on, dc
}

// scalarNeighborCount is the oracle: per-minterm neighbor membership by
// direct enumeration.
func scalarNeighborCount(s *Set, m, k int) int {
	c := 0
	for b := 0; b < k; b++ {
		if s.Test(m ^ 1<<uint(b)) {
			c++
		}
	}
	return c
}

func TestCensusCountsMatchScalar(t *testing.T) {
	for _, k := range []int{0, 1, 3, 6, 8} {
		on, dc := randomPhases(k, 0.3, int64(100+k))
		c := NewCensus(on, dc)
		off := c.Off()
		n := 1 << uint(k)
		for m := 0; m < n; m++ {
			if got, want := c.OnAt(m), scalarNeighborCount(on, m, k); got != want {
				t.Fatalf("k=%d m=%d OnAt=%d want %d", k, m, got, want)
			}
			if got, want := c.OffAt(m), scalarNeighborCount(off, m, k); got != want {
				t.Fatalf("k=%d m=%d OffAt=%d want %d", k, m, got, want)
			}
			if got, want := c.DCAt(m), scalarNeighborCount(dc, m, k); got != want {
				t.Fatalf("k=%d m=%d DCAt=%d want %d", k, m, got, want)
			}
			if c.OnAt(m)+c.OffAt(m)+c.DCAt(m) != k {
				t.Fatalf("k=%d m=%d censuses do not partition the neighborhood", k, m)
			}
		}
	}
}

func TestCensusSnapshotsInputs(t *testing.T) {
	on, dc := randomPhases(6, 0.4, 7)
	c := NewCensus(on, dc)
	before := c.OnAt(0)
	// Mutating the source sets after the build (as DC assignment does)
	// must not change what the census reports.
	on.FillAll()
	dc.Reset()
	if c.OnAt(0) != before {
		t.Fatal("census aliases its input sets instead of snapshotting them")
	}
}

func TestCensusBasePairs(t *testing.T) {
	for _, k := range []int{2, 6, 7} {
		on, dc := randomPhases(k, 0.25, int64(200+k))
		c := NewCensus(on, dc)
		want := 0
		for b := 0; b < k; b++ {
			want += 2 * on.ShiftAndPopcount(c.Off(), b)
		}
		if got := c.BasePairs(); got != want {
			t.Fatalf("k=%d BasePairs=%d want %d", k, got, want)
		}
	}
}

func TestCensusDCPairBounds(t *testing.T) {
	on, dc := randomPhases(7, 0.5, 42)
	c := NewCensus(on, dc)
	wantMin, wantMax := 0, 0
	dc.ForEach(func(m int) {
		onN, offN := scalarNeighborCount(on, m, 7), scalarNeighborCount(c.Off(), m, 7)
		wantMin += min(onN, offN)
		wantMax += max(onN, offN)
	})
	gotMin, gotMax := c.DCPairBounds()
	if gotMin != wantMin || gotMax != wantMax {
		t.Fatalf("DCPairBounds=(%d,%d) want (%d,%d)", gotMin, gotMax, wantMin, wantMax)
	}
}

func TestCensusBorders(t *testing.T) {
	for _, k := range []int{1, 5, 8} {
		on, dc := randomPhases(k, 0.3, int64(300+k))
		c := NewCensus(on, dc)
		n := 1 << uint(k)
		var want0, want1, wantDC int
		for m := 0; m < n; m++ {
			switch {
			case on.Test(m):
				want1 += k - scalarNeighborCount(on, m, k)
			case dc.Test(m):
				wantDC += k - scalarNeighborCount(dc, m, k)
			default:
				want0 += k - scalarNeighborCount(c.Off(), m, k)
			}
		}
		b0, b1, bdc := c.Borders()
		if b0 != want0 || b1 != want1 || bdc != wantDC {
			t.Fatalf("k=%d Borders=(%d,%d,%d) want (%d,%d,%d)", k, b0, b1, bdc, want0, want1, wantDC)
		}
	}
}

func TestCensusSamePhase(t *testing.T) {
	on, dc := randomPhases(8, 0.35, 9)
	c := NewCensus(on, dc)
	n := 1 << 8
	sp := c.SamePhaseCounter()
	wantTotal := 0
	for m := 0; m < n; m++ {
		var want int
		switch {
		case on.Test(m):
			want = scalarNeighborCount(on, m, 8)
		case dc.Test(m):
			want = scalarNeighborCount(dc, m, 8)
		default:
			want = scalarNeighborCount(c.Off(), m, 8)
		}
		if got := sp.Get(m); got != want {
			t.Fatalf("m=%d SamePhaseCounter=%d want %d", m, got, want)
		}
		wantTotal += want
	}
	if got := c.SamePhasePairs(); got != wantTotal {
		t.Fatalf("SamePhasePairs=%d want %d", got, wantTotal)
	}
}

func TestCensusDiffEvents(t *testing.T) {
	for _, k := range []int{1, 6, 8} {
		n := 1 << uint(k)
		rng := rand.New(rand.NewSource(int64(400 + k)))
		val, excl := New(n), New(n)
		for m := 0; m < n; m++ {
			if rng.Intn(2) == 0 {
				val.Set(m)
			}
			if rng.Intn(4) == 0 {
				excl.Set(m)
			}
		}
		c := NewCensus(val, New(n))
		if got, want := c.DiffEvents(excl), val.NeighborDiffAndNotPopcountAll(excl); got != want {
			t.Fatalf("k=%d DiffEvents=%d want %d", k, got, want)
		}
	}
}

// TestMaskedCounterSumBlocked drives the blocked reduction across the
// block boundary (multiple popcountBlockWords tiles plus a ragged
// tail) against a Get-per-minterm oracle.
func TestMaskedCounterSumBlocked(t *testing.T) {
	k := 16 // 1024 words: two default tiles, one v3 tile
	if 1<<uint(k-6) <= popcountBlockWords {
		t.Logf("note: n=2^%d fits one block of %d words; boundary exercised only on smaller block sizes", k, popcountBlockWords)
	}
	on, dc := randomPhases(k, 0.3, 77)
	cnt := NeighborCount(on)
	want := 0
	dc.ForEach(func(m int) { want += cnt.Get(m) })
	if got := MaskedCounterSum(cnt, dc); got != want {
		t.Fatalf("MaskedCounterSum=%d want %d", got, want)
	}
}

func TestCensusBytes(t *testing.T) {
	on, dc := randomPhases(10, 0.3, 5)
	c := NewCensus(on, dc)
	words := 1 << 10 / 64
	wantMin := 8 * words * (3 + 3*bits.Len(10))
	if got := c.Bytes(); got < wantMin/2 || got > 4*wantMin {
		t.Fatalf("Bytes=%d, implausible for n=1024 (expected near %d)", got, wantMin)
	}
}
