package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.Count() != 0 || s.Any() {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	s.SetTo(64, true)
	if !s.Test(64) {
		t.Fatal("SetTo(true) did not set")
	}
	s.SetTo(64, false)
	if s.Test(64) {
		t.Fatal("SetTo(false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Test(10) },
		func() { s.Set(-1) },
		func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	a.InPlaceUnion(b)
}

func TestFillAllAndComplement(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.FillAll()
		if s.Count() != n {
			t.Fatalf("n=%d: FillAll count=%d", n, s.Count())
		}
		c := s.Complement()
		if c.Any() {
			t.Fatalf("n=%d: complement of full set not empty", n)
		}
		if !c.Complement().Equal(s) {
			t.Fatalf("n=%d: double complement mismatch", n)
		}
	}
}

func randomSet(rng *rand.Rand, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Set(i)
		}
	}
	return s
}

func TestSetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a := randomSet(rng, n, 0.4)
		b := randomSet(rng, n, 0.4)
		u := a.Union(b)
		x := a.Intersect(b)
		d := a.Difference(b)
		for i := 0; i < n; i++ {
			if u.Test(i) != (a.Test(i) || b.Test(i)) {
				t.Fatalf("union wrong at %d", i)
			}
			if x.Test(i) != (a.Test(i) && b.Test(i)) {
				t.Fatalf("intersect wrong at %d", i)
			}
			if d.Test(i) != (a.Test(i) && !b.Test(i)) {
				t.Fatalf("difference wrong at %d", i)
			}
		}
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Count()+b.Count() != u.Count()+x.Count() {
			t.Fatal("inclusion-exclusion violated")
		}
		if x.Count() != a.IntersectionCount(b) {
			t.Fatal("IntersectionCount mismatch")
		}
		if a.IntersectsWith(b) != x.Any() {
			t.Fatal("IntersectsWith mismatch")
		}
		if !x.SubsetOf(a) || !x.SubsetOf(b) || !a.SubsetOf(u) {
			t.Fatal("SubsetOf violated")
		}
	}
}

func TestInPlaceOpsMatchPure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		a := randomSet(rng, n, 0.5)
		b := randomSet(rng, n, 0.5)

		u := a.Clone()
		u.InPlaceUnion(b)
		if !u.Equal(a.Union(b)) {
			t.Fatal("InPlaceUnion mismatch")
		}
		x := a.Clone()
		x.InPlaceIntersect(b)
		if !x.Equal(a.Intersect(b)) {
			t.Fatal("InPlaceIntersect mismatch")
		}
		d := a.Clone()
		d.InPlaceDifference(b)
		if !d.Equal(a.Difference(b)) {
			t.Fatal("InPlaceDifference mismatch")
		}
		sd := a.Clone()
		sd.InPlaceSymDiff(b)
		want := a.Union(b).Difference(a.Intersect(b))
		if !sd.Equal(want) {
			t.Fatal("InPlaceSymDiff mismatch")
		}
	}
}

func TestNextSetAndForEach(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for i := s.NextSet(0); i != -1; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk got %v want %v", got, want)
		}
	}
	var fe []int
	s.ForEach(func(i int) { fe = append(fe, i) })
	if len(fe) != len(want) {
		t.Fatalf("ForEach got %v", fe)
	}
	idx := s.Indices()
	for i := range want {
		if fe[i] != want[i] || idx[i] != want[i] {
			t.Fatalf("ForEach/Indices mismatch at %d", i)
		}
	}
	if s.NextSet(200) != -1 {
		t.Fatal("NextSet past end should be -1")
	}
}

func TestShiftXorSmall(t *testing.T) {
	// n = 16 minterms (4 variables). Set minterm 0b0101 = 5.
	s := New(16)
	s.Set(5)
	for bit := 0; bit < 4; bit++ {
		got := s.ShiftXor(bit)
		want := 5 ^ (1 << bit)
		if got.Count() != 1 || !got.Test(want) {
			t.Fatalf("ShiftXor(%d): got %v, want {%d}", bit, got, want)
		}
	}
}

func TestShiftXorInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, logn := range []int{1, 3, 6, 7, 9, 12} {
		n := 1 << logn
		s := randomSet(rng, n, 0.3)
		for bit := 0; bit < logn; bit++ {
			twice := s.ShiftXor(bit).ShiftXor(bit)
			if !twice.Equal(s) {
				t.Fatalf("n=%d bit=%d: ShiftXor not an involution", n, bit)
			}
		}
	}
}

func TestShiftXorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, logn := range []int{2, 5, 6, 8, 10} {
		n := 1 << logn
		s := randomSet(rng, n, 0.4)
		for bit := 0; bit < logn; bit++ {
			fast := s.ShiftXor(bit)
			slow := New(n)
			for i := 0; i < n; i++ {
				if s.Test(i ^ (1 << bit)) {
					slow.Set(i)
				}
			}
			if !fast.Equal(slow) {
				t.Fatalf("n=%d bit=%d: ShiftXor mismatch", n, bit)
			}
		}
	}
}

func TestShiftXorPreservesCount(t *testing.T) {
	f := func(seed int64, bitRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << 9
		s := randomSet(rng, n, 0.5)
		bit := int(bitRaw) % 9
		return s.ShiftXor(bit).Count() == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftXorRejectsNonPowerOfTwo(t *testing.T) {
	s := New(100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two capacity")
		}
	}()
	s.ShiftXor(0)
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(10)
	b := a.Clone()
	b.Set(20)
	if a.Test(20) {
		t.Fatal("Clone shares storage with original")
	}
	c := New(64)
	c.Copy(b)
	c.Clear(10)
	if !b.Test(10) {
		t.Fatal("Copy shares storage")
	}
}

func BenchmarkShiftXorLowBit(b *testing.B) {
	s := New(1 << 16)
	s.FillAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ShiftXor(3)
	}
}

func BenchmarkShiftXorHighBit(b *testing.B) {
	s := New(1 << 16)
	s.FillAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ShiftXor(12)
	}
}
