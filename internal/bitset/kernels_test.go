package bitset

import (
	"errors"
	"math/rand"
	"testing"
)

// naiveShift is the per-bit reference for the neighbor permutation.
func naiveShift(s *Set, bit int) *Set {
	out := New(s.Len())
	for i := 0; i < s.Len(); i++ {
		if s.Test(i ^ (1 << bit)) {
			out.Set(i)
		}
	}
	return out
}

func TestShiftNeighborMatchesShiftXor(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, logn := range []int{0, 1, 3, 5, 6, 7, 8, 10} {
		n := 1 << logn
		s := randomSet(rng, n, 0.4)
		for bit := 0; bit < logn; bit++ {
			if !s.ShiftNeighbor(bit).Equal(s.ShiftXor(bit)) {
				t.Fatalf("n=%d bit=%d: ShiftNeighbor != ShiftXor", n, bit)
			}
			if !s.ShiftNeighbor(bit).Equal(naiveShift(s, bit)) {
				t.Fatalf("n=%d bit=%d: ShiftNeighbor != naive", n, bit)
			}
		}
	}
}

func TestShiftNeighborIntoNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSet(rng, 1<<9, 0.5)
	dst := New(1 << 9)
	allocs := testing.AllocsPerRun(100, func() {
		ShiftNeighborInto(dst, s, 7)
	})
	if allocs != 0 {
		t.Fatalf("ShiftNeighborInto allocates %v per run, want 0", allocs)
	}
	if !dst.Equal(s.ShiftXor(7)) {
		t.Fatal("ShiftNeighborInto result mismatch")
	}
}

func TestShiftNeighborIntoRejectsAliasAndMismatch(t *testing.T) {
	s := New(64)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected alias panic")
			}
		}()
		ShiftNeighborInto(s, s, 0)
	}()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected size-mismatch panic")
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrSizeMismatch) {
				t.Fatalf("panic %v does not match ErrSizeMismatch", r)
			}
		}()
		ShiftNeighborInto(New(128), s, 0)
	}()
}

func TestFusedPopcounts(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		logn := 1 + rng.Intn(10)
		n := 1 << logn
		a := randomSet(rng, n, 0.45)
		b := randomSet(rng, n, 0.45)
		if got, want := a.AndPopcount(b), a.Intersect(b).Count(); got != want {
			t.Fatalf("AndPopcount=%d want %d", got, want)
		}
		sd := a.Clone()
		sd.InPlaceSymDiff(b)
		if got, want := a.XorPopcount(b), sd.Count(); got != want {
			t.Fatalf("XorPopcount=%d want %d", got, want)
		}
		if got, want := a.AndNotPopcount(b), a.Difference(b).Count(); got != want {
			t.Fatalf("AndNotPopcount=%d want %d", got, want)
		}
		for bit := 0; bit < logn; bit++ {
			if got, want := a.ShiftAndPopcount(b, bit), a.Intersect(b.ShiftXor(bit)).Count(); got != want {
				t.Fatalf("n=%d bit=%d: ShiftAndPopcount=%d want %d", n, bit, got, want)
			}
			diff := a.Clone()
			diff.InPlaceSymDiff(a.ShiftXor(bit))
			if got, want := a.NeighborDiffPopcount(b, bit), diff.Intersect(b).Count(); got != want {
				t.Fatalf("n=%d bit=%d: NeighborDiffPopcount=%d want %d", n, bit, got, want)
			}
			if got, want := a.NeighborDiffAndNotPopcount(b, bit), diff.Difference(b).Count(); got != want {
				t.Fatalf("n=%d bit=%d: NeighborDiffAndNotPopcount=%d want %d", n, bit, got, want)
			}
		}
		wantAll := 0
		for bit := 0; bit < logn; bit++ {
			wantAll += a.NeighborDiffAndNotPopcount(b, bit)
		}
		if got := a.NeighborDiffAndNotPopcountAll(b); got != wantAll {
			t.Fatalf("n=%d: NeighborDiffAndNotPopcountAll=%d want %d", n, got, wantAll)
		}
	}
}

func TestFusedPopcountsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSet(rng, 1<<10, 0.5)
	b := randomSet(rng, 1<<10, 0.5)
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		sink += a.AndPopcount(b) + a.XorPopcount(b) + a.AndNotPopcount(b) +
			a.ShiftAndPopcount(b, 3) + a.ShiftAndPopcount(b, 8) +
			a.NeighborDiffPopcount(b, 3) + a.NeighborDiffPopcount(b, 8) +
			a.NeighborDiffAndNotPopcount(b, 3) + a.NeighborDiffAndNotPopcount(b, 8) +
			a.NeighborDiffAndNotPopcountAll(b)
	})
	if allocs != 0 {
		t.Fatalf("fused popcounts allocate %v per run, want 0 (sink=%d)", allocs, sink)
	}
}

func TestSizeMismatchTyped(t *testing.T) {
	a, b := New(64), New(128)
	ops := map[string]func(){
		"AndPopcount":                   func() { a.AndPopcount(b) },
		"XorPopcount":                   func() { a.XorPopcount(b) },
		"AndNotPopcount":                func() { a.AndNotPopcount(b) },
		"ShiftAndPopcount":              func() { a.ShiftAndPopcount(b, 0) },
		"NeighborDiffPopcount":          func() { a.NeighborDiffPopcount(b, 0) },
		"NeighborDiffAndNotPopcount":    func() { a.NeighborDiffAndNotPopcount(b, 0) },
		"NeighborDiffAndNotPopcountAll": func() { a.NeighborDiffAndNotPopcountAll(b) },
		"InPlaceUnion":                  func() { a.InPlaceUnion(b) },
		"InPlaceIntersect":              func() { a.InPlaceIntersect(b) },
		"InPlaceDifference":             func() { a.InPlaceDifference(b) },
		"InPlaceSymDiff":                func() { a.InPlaceSymDiff(b) },
		"Copy":                          func() { a.Copy(b) },
		"IntersectsWith":                func() { a.IntersectsWith(b) },
		"IntersectionCount":             func() { a.IntersectionCount(b) },
		"SubsetOf":                      func() { a.SubsetOf(b) },
	}
	for name, fn := range ops {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: expected panic on size mismatch", name)
				}
				err, ok := r.(error)
				if !ok {
					t.Fatalf("%s: panic value %v is not an error", name, r)
				}
				if !errors.Is(err, ErrSizeMismatch) {
					t.Fatalf("%s: panic %v does not match ErrSizeMismatch", name, err)
				}
				var sme *SizeMismatchError
				if !errors.As(err, &sme) {
					t.Fatalf("%s: panic %v is not a *SizeMismatchError", name, err)
				}
				if sme.A == sme.B {
					t.Fatalf("%s: degenerate sizes %d/%d", name, sme.A, sme.B)
				}
			}()
			fn()
		}()
	}
}

func TestKernelScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := randomSet(rng, 1<<8, 0.5)
	k := NewKernelScratch(1 << 8)
	got := k.ShiftNeighbor(0, s, 5)
	if !got.Equal(s.ShiftXor(5)) {
		t.Fatal("scratch ShiftNeighbor mismatch")
	}
	// Reusing a slot overwrites in place with no allocation.
	allocs := testing.AllocsPerRun(50, func() {
		k.ShiftNeighbor(0, s, 3)
	})
	if allocs != 0 {
		t.Fatalf("scratch reuse allocates %v per run, want 0", allocs)
	}
	if !k.Scratch(0).Equal(s.ShiftXor(3)) {
		t.Fatal("scratch slot content mismatch after reuse")
	}
	// Distinct slots are distinct sets.
	if k.Scratch(1) == k.Scratch(0) {
		t.Fatal("slots alias")
	}
}

func TestCounterAddAndGet(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 1 << 7
	c := NewCounter(n, 5)
	ref := make([]int, n)
	for round := 0; round < 5; round++ {
		s := randomSet(rng, n, 0.5)
		c.Add(s)
		for i := 0; i < n; i++ {
			if s.Test(i) {
				ref[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		if c.Get(i) != ref[i] {
			t.Fatalf("counter[%d]=%d want %d", i, c.Get(i), ref[i])
		}
	}
}

func TestCounterOverflowPanics(t *testing.T) {
	c := NewCounter(64, 1)
	s := New(64)
	s.FillAll()
	c.Add(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected counter overflow panic")
		}
	}()
	c.Add(s)
}

func TestCounterAddShiftedAtLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 1 << 8
	s := randomSet(rng, n, 0.5)
	c := NewCounter(n, 12)
	c.AddShiftedAtLevel(s, 2, 0) // + s[m^4]
	c.AddShiftedAtLevel(s, 2, 1) // + 2·s[m^4]
	c.AddShiftedAtLevel(s, 5, 2) // + 4·s[m^32]
	for m := 0; m < n; m++ {
		want := 0
		if s.Test(m ^ 4) {
			want += 3
		}
		if s.Test(m ^ 32) {
			want += 4
		}
		if c.Get(m) != want {
			t.Fatalf("counter[%d]=%d want %d", m, c.Get(m), want)
		}
	}
}

func TestNeighborCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, logn := range []int{0, 1, 2, 4, 6, 7, 9} {
		n := 1 << logn
		s := randomSet(rng, n, 0.4)
		c := NeighborCount(s)
		for m := 0; m < n; m++ {
			want := 0
			for b := 0; b < logn; b++ {
				if s.Test(m ^ (1 << b)) {
					want++
				}
			}
			if c.Get(m) != want {
				t.Fatalf("n=%d m=%d: NeighborCount=%d want %d", n, m, c.Get(m), want)
			}
		}
	}
}

// FuzzKernelEquivalence cross-checks every word-parallel kernel against
// a naive per-bit reference over random on/dc set pairs. The corpus
// seeds pin the half-plane mask boundaries: 2^bit = 32 (the largest
// in-word shift), 64 (the first whole-word swap), and 128 (stride-2
// word swaps).
func FuzzKernelEquivalence(f *testing.F) {
	// (logn, bit, two 64-bit seeds for the on/dc patterns)
	f.Add(uint8(6), uint8(5), uint64(0xdeadbeef), uint64(0x12345678)) // 2^5 = 32: last masked shift
	f.Add(uint8(7), uint8(6), uint64(0xcafebabe), uint64(0x87654321)) // 2^6 = 64: first word swap
	f.Add(uint8(8), uint8(7), uint64(0x0f0f0f0f), uint64(0xf0f0f0f0)) // 2^7 = 128: stride-2 swap
	f.Add(uint8(0), uint8(0), uint64(1), uint64(2))
	f.Add(uint8(10), uint8(9), uint64(3), uint64(4))

	f.Fuzz(func(t *testing.T, lognRaw, bitRaw uint8, seedA, seedB uint64) {
		logn := int(lognRaw) % 11 // n ≤ 2^10 = 1024 minterms
		n := 1 << logn
		bit := 0
		if logn > 0 {
			bit = int(bitRaw) % logn
		}
		rngA := rand.New(rand.NewSource(int64(seedA)))
		rngB := rand.New(rand.NewSource(int64(seedB)))
		on := randomSet(rngA, n, 0.5)
		dc := randomSet(rngB, n, 0.3)

		if logn > 0 {
			shifted := on.ShiftNeighbor(bit)
			naive := naiveShift(on, bit)
			if !shifted.Equal(naive) {
				t.Fatalf("ShiftNeighbor(n=%d,bit=%d) != naive", n, bit)
			}
			into := New(n)
			ShiftNeighborInto(into, on, bit)
			if !into.Equal(naive) {
				t.Fatal("ShiftNeighborInto != naive")
			}
			if got, want := on.ShiftAndPopcount(dc, bit), on.Intersect(naiveShift(dc, bit)).Count(); got != want {
				t.Fatalf("ShiftAndPopcount=%d want %d", got, want)
			}
			wantDiff, wantDiffNot := 0, 0
			for m := 0; m < n; m++ {
				if on.Test(m) != on.Test(m^(1<<bit)) {
					if dc.Test(m) {
						wantDiff++
					} else {
						wantDiffNot++
					}
				}
			}
			if got := on.NeighborDiffPopcount(dc, bit); got != wantDiff {
				t.Fatalf("NeighborDiffPopcount=%d want %d", got, wantDiff)
			}
			if got := on.NeighborDiffAndNotPopcount(dc, bit); got != wantDiffNot {
				t.Fatalf("NeighborDiffAndNotPopcount=%d want %d", got, wantDiffNot)
			}
			wantAll := 0
			for m := 0; m < n; m++ {
				if dc.Test(m) {
					continue
				}
				for bb := 0; bb < logn; bb++ {
					if on.Test(m) != on.Test(m^(1<<bb)) {
						wantAll++
					}
				}
			}
			if got := on.NeighborDiffAndNotPopcountAll(dc); got != wantAll {
				t.Fatalf("NeighborDiffAndNotPopcountAll=%d want %d", got, wantAll)
			}
		}

		wantAnd, wantXor, wantAndNot := 0, 0, 0
		for m := 0; m < n; m++ {
			a, b := on.Test(m), dc.Test(m)
			if a && b {
				wantAnd++
			}
			if a != b {
				wantXor++
			}
			if a && !b {
				wantAndNot++
			}
		}
		if got := on.AndPopcount(dc); got != wantAnd {
			t.Fatalf("AndPopcount=%d want %d", got, wantAnd)
		}
		if got := on.XorPopcount(dc); got != wantXor {
			t.Fatalf("XorPopcount=%d want %d", got, wantXor)
		}
		if got := on.AndNotPopcount(dc); got != wantAndNot {
			t.Fatalf("AndNotPopcount=%d want %d", got, wantAndNot)
		}

		c := NeighborCount(on)
		for m := 0; m < n; m++ {
			want := 0
			for b := 0; b < logn; b++ {
				if on.Test(m ^ (1 << b)) {
					want++
				}
			}
			if c.Get(m) != want {
				t.Fatalf("NeighborCount[%d]=%d want %d", m, c.Get(m), want)
			}
		}
	})
}
