// Cache-blocked popcount reductions for the census plane sums.
//
// A masked plane sum Σ_p 2^p·|plane_p ∩ mask| walks planes×words of
// data. Plane-major order streams the full mask once per plane, which
// falls out of cache as soon as sets outgrow L1/L2 (n=16 is 8 KiB per
// plane; n=20 is 128 KiB). The blocked driver instead walks the words
// in fixed blocks and visits every plane inside the block, so each mask
// block is loaded once and stays resident across all planes.
//
// The inner fused and+popcount loop is unrolled four wide: on amd64
// bits.OnesCount64 compiles to POPCNT and four independent accumulators
// hide its dependency chain. The block size is build-tagged
// (popcount_block*.go): GOAMD64=v3 builds drop the POPCNT feature
// branch and assume the larger L2 of v3-class cores, so they run wider
// blocks.
package bitset

import "math/bits"

// andPopcountWords returns Σ OnesCount64(a[i] & b[i]) with a four-wide
// unroll. The slices must have equal length.
func andPopcountWords(a, b []uint64) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i] & b[i])
		c1 += bits.OnesCount64(a[i+1] & b[i+1])
		c2 += bits.OnesCount64(a[i+2] & b[i+2])
		c3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i] & b[i])
	}
	return c0 + c1 + c2 + c3
}

// maskedPlaneSum returns Σ_m∈mask counter[m] = Σ_p 2^p·|plane_p ∩ mask|,
// blocked so the mask block is reused across planes while hot.
func maskedPlaneSum(c *Counter, mask *Set) int {
	if mask.n != c.n {
		panic(NewSizeMismatch("bitset.maskedPlaneSum", c.n, mask.n))
	}
	total := 0
	mw := mask.words
	for base := 0; base < len(mw); base += popcountBlockWords {
		end := base + popcountBlockWords
		if end > len(mw) {
			end = len(mw)
		}
		mb := mw[base:end]
		for p, plane := range c.planes {
			total += andPopcountWords(plane.words[base:end], mb) << p
		}
	}
	return total
}

// MaskedCounterSum exposes the blocked masked plane sum: the sum of the
// counter's values over the mask's members. This is the reduction every
// census-derived metric bottoms out in.
func MaskedCounterSum(c *Counter, mask *Set) int { return maskedPlaneSum(c, mask) }
