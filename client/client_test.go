package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
)

// scriptedServer returns an httptest server that replies with the given
// (status, body) script, repeating the last step once exhausted.
func scriptedServer(t *testing.T, steps []struct {
	code    int
	body    string
	headers map[string]string
}) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(steps) {
			i = len(steps) - 1
		}
		for k, v := range steps[i].headers {
			w.Header().Set(k, v)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(steps[i].code)
		fmt.Fprint(w, steps[i].body)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// testClient builds a client with deterministic jitter (factor 1.0) and
// a recording, non-blocking sleeper.
func testClient(t *testing.T, base string, mutate func(*Config)) (*Client, *[]time.Duration, *obs.Registry) {
	t.Helper()
	var delays []time.Duration
	reg := obs.NewRegistry()
	cfg := Config{
		BaseURL: base,
		Metrics: reg,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return ctx.Err()
		},
		Rand: func() float64 { return 0.5 }, // jitter factor exactly 1.0
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, &delays, reg
}

func TestRetryBackoffSchedule(t *testing.T) {
	ts, calls := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 503, body: `{"status":"draining"}`},
		{code: 500, body: `{"status":"error"}`},
		{code: 200, body: `{"status":"done","job_id":"j1"}`},
	})
	c, delays, reg := testClient(t, ts.URL, nil)
	resp, err := c.Job(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	if resp.Status != "done" {
		t.Fatalf("status = %s, want done", resp.Status)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Exponential schedule with deterministic jitter: 100ms, 200ms.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v, want %v", *delays, want)
	}
	for i, d := range *delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, d, want[i])
		}
	}
	if got := reg.Counter("relsyn_client_retries_total").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

func TestRetryAfterOverridesBackoff(t *testing.T) {
	ts, _ := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 429, body: `{"status":"rejected"}`, headers: map[string]string{"Retry-After": "2"}},
		{code: 429, body: `{"status":"rejected"}`, headers: map[string]string{"Retry-After": "3600"}},
		{code: 200, body: `{"status":"done"}`},
	})
	c, delays, _ := testClient(t, ts.URL, nil)
	if _, err := c.Job(context.Background(), "x"); err != nil {
		t.Fatalf("Job: %v", err)
	}
	// First delay follows the server's hint; the second is the hint
	// capped at MaxBackoff (5s default) — never an hour-long stall.
	want := []time.Duration{2 * time.Second, 5 * time.Second}
	if len(*delays) != 2 || (*delays)[0] != want[0] || (*delays)[1] != want[1] {
		t.Fatalf("delays = %v, want %v", *delays, want)
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	ts, calls := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 503, body: `{"status":"draining"}`},
	})
	c, _, reg := testClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Job(context.Background(), "x")
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if got := reg.Counter("relsyn_client_retries_total").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

func TestNonRetryableFailsFast(t *testing.T) {
	ts, calls := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 400, body: `{"status":"invalid","error":"parse pla: empty pla"}`},
	})
	c, delays, _ := testClient(t, ts.URL, nil)
	resp, err := c.Synth(context.Background(), "", pipeline.JobOptions{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want HTTP 400", err)
	}
	if resp == nil || resp.Error == "" {
		t.Fatalf("resp = %+v, want decoded error envelope", resp)
	}
	if calls.Load() != 1 || len(*delays) != 0 {
		t.Fatalf("client retried a 400 (%d calls, %v delays)", calls.Load(), *delays)
	}
}

func TestTransportErrorRetried(t *testing.T) {
	// A server that immediately closes is a pure transport failure.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()
	c, _, _ := testClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 2 })
	_, err := c.Job(context.Background(), "x")
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want transport retries exhausted", err)
	}
}

func TestHedgeWinsOverStalledPrimary(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // primary stalls until the test ends
			case <-release:
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"done","job_id":"hedged"}`)
	}))
	defer ts.Close()
	defer close(release)

	c, err := New(Config{
		BaseURL:    ts.URL,
		Metrics:    obs.NewRegistry(),
		HedgeAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := c.Synth(context.Background(), ".i 1\n.o 1\n1 1\n.e\n", pipeline.JobOptions{})
	if err != nil {
		t.Fatalf("Synth: %v", err)
	}
	if resp.Status != "done" {
		t.Fatalf("status = %s, want done", resp.Status)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("hedged request took %v — hedge never fired", d)
	}
	if calls.Load() < 2 {
		t.Fatalf("server saw %d calls, want primary + hedge", calls.Load())
	}
	snap := c.cfg.Metrics.Snapshot()
	if snap.Counters["relsyn_client_hedges_total"] < 1 {
		t.Fatalf("hedges counter = %v, want >= 1", snap.Counters)
	}
	if snap.Counters["relsyn_client_hedge_wins_total"] < 1 {
		t.Fatalf("hedge wins counter = %v, want >= 1", snap.Counters)
	}
}

func TestWaitPollsToTerminal(t *testing.T) {
	ts, calls := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 200, body: `{"status":"queued","job_id":"j"}`},
		{code: 200, body: `{"status":"running","job_id":"j"}`},
		{code: 200, body: `{"status":"done","job_id":"j"}`},
	})
	c, _, _ := testClient(t, ts.URL, nil)
	resp, err := c.Wait(context.Background(), "j")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if resp.Status != "done" || calls.Load() != 3 {
		t.Fatalf("status %s after %d polls, want done after 3", resp.Status, calls.Load())
	}
}

func TestTerminal(t *testing.T) {
	for status, want := range map[string]bool{
		"done": true, "failed": true, "expired": true,
		"queued": false, "running": false, "": false,
	} {
		if got := (&Response{Status: status}).Terminal(); got != want {
			t.Errorf("Terminal(%q) = %v, want %v", status, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty BaseURL")
	}
}

// TestClientMetricsExposition pins the wire names of the client series:
// CI greps the Prometheus exposition for relsyn_client_retries_total.
func TestClientMetricsExposition(t *testing.T) {
	ts, _ := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 503, body: `{"status":"draining"}`},
		{code: 200, body: `{"status":"done"}`},
	})
	c, _, reg := testClient(t, ts.URL, nil)
	if _, err := c.Job(context.Background(), "x"); err != nil {
		t.Fatalf("Job: %v", err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"relsyn_client_retries_total 1",
		`relsyn_client_requests_total{code="200"} 1`,
		`relsyn_client_requests_total{code="503"} 1`,
		"relsyn_client_hedges_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestWaitHonorsRetryAfterUnder429 pins the poll loop's interaction
// with backpressure: a 429 inside a poll is retried by the transport
// layer honoring the server's Retry-After hint, and the poll schedule
// resumes where it left off once the server answers again.
func TestWaitHonorsRetryAfterUnder429(t *testing.T) {
	ts, calls := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 200, body: `{"status":"queued","job_id":"j"}`},
		{code: 429, body: `{"status":"rejected"}`, headers: map[string]string{"Retry-After": "3"}},
		{code: 429, body: `{"status":"rejected"}`, headers: map[string]string{"Retry-After": "2"}},
		{code: 200, body: `{"status":"running","job_id":"j"}`},
		{code: 200, body: `{"status":"done","job_id":"j"}`},
	})
	c, delays, reg := testClient(t, ts.URL, nil)
	resp, err := c.Wait(context.Background(), "j")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if resp.Status != "done" {
		t.Fatalf("status = %s, want done", resp.Status)
	}
	if calls.Load() != 5 {
		t.Fatalf("server saw %d calls, want 5", calls.Load())
	}
	// poll 1 sleeps backoff(1); the 429s sleep their Retry-After hints;
	// poll 2 (which absorbed both 429s) sleeps backoff(2).
	want := []time.Duration{
		100 * time.Millisecond, // after the first pending poll
		3 * time.Second,        // Retry-After: 3
		2 * time.Second,        // Retry-After: 2
		200 * time.Millisecond, // after the second pending poll
	}
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v, want %v", *delays, want)
	}
	for i, d := range *delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, d, want[i])
		}
	}
	if got := reg.Counter("relsyn_client_retries_total").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2 (the 429s; poll sleeps are not retries)", got)
	}
}

// TestWaitBoundedPollsAndCtxCancel pins two Wait safety properties: the
// per-poll delay is capped (the schedule stops growing at backoff(6)),
// and a context cancellation mid-wait surfaces promptly instead of
// looping forever against a never-terminal job.
func TestWaitBoundedPollsAndCtxCancel(t *testing.T) {
	ts, calls := scriptedServer(t, []struct {
		code    int
		body    string
		headers map[string]string
	}{
		{code: 200, body: `{"status":"running","job_id":"j"}`},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const sleepsBeforeCancel = 8
	var delays []time.Duration
	c, _, _ := testClient(t, ts.URL, func(cfg *Config) {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			if len(delays) >= sleepsBeforeCancel {
				cancel()
			}
			return ctx.Err()
		}
	})
	if _, err := c.Wait(ctx, "j"); err == nil || ctx.Err() == nil {
		t.Fatalf("Wait = %v, want context cancellation error", err)
	}
	// One poll per sleep: the cancelled sleep ends the loop.
	if calls.Load() != sleepsBeforeCancel {
		t.Fatalf("server saw %d polls, want %d", calls.Load(), sleepsBeforeCancel)
	}
	// 100ms << 5 = 3.2s: the schedule doubles for five polls and then
	// holds — an unbounded doubling would blow through MaxBackoff and
	// make long waits unresponsive to cancellation.
	cap6 := 3200 * time.Millisecond
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, cap6, cap6, cap6,
	}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (full: %v)", i, d, want[i], delays)
		}
	}
}
