// Package client is the Go client for the relsynd synthesis service,
// with the reliability behaviors a fleet caller needs built in:
//
//   - Retries with capped exponential backoff and jitter on transport
//     errors, 429 (queue backpressure), 503 (draining), and other 5xx
//     responses. A 429's Retry-After header overrides the computed
//     backoff (capped at MaxBackoff) — the server's hint is
//     authoritative.
//   - Per-request hedging for tail latency: when HedgeAfter is set and
//     the primary request has not answered in time, an identical
//     request is raced against it and the first response wins. Hedging
//     is safe against relsynd by construction — requests are
//     content-addressed, so duplicates coalesce server-side onto one
//     execution instead of doubling work.
//
// Both behaviors assume idempotent submissions, which relsynd
// guarantees: identical (spec, options) pairs share one cache entry and
// one in-flight execution.
//
// The client exports relsyn_client_* metrics (requests by code,
// retries, hedges) on the configured obs registry.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
)

// Response is the relsynd job envelope (the wire shape of
// internal/server.SynthResponse).
type Response struct {
	JobID     string              `json:"job_id,omitempty"`
	Status    string              `json:"status"`
	Cached    bool                `json:"cached,omitempty"`
	Coalesced bool                `json:"coalesced,omitempty"`
	Result    *pipeline.JobResult `json:"result,omitempty"`
	Error     string              `json:"error,omitempty"`
}

// Terminal reports whether the envelope describes a finished job.
func (r *Response) Terminal() bool {
	switch r.Status {
	case "done", "failed", "expired":
		return true
	}
	return false
}

// Config configures New. The zero value of every field has a sensible
// default; only BaseURL is required.
type Config struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:8337".
	BaseURL string
	// HTTPClient overrides the transport (default: http.Client with a
	// 2-minute overall timeout; per-call deadlines come from ctx).
	HTTPClient *http.Client

	// MaxAttempts bounds tries per logical request, first attempt
	// included (default 4).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 100ms); attempt k
	// waits BaseBackoff·2^(k-1), capped at MaxBackoff (default 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac spreads each delay uniformly over ±frac·delay
	// (default 0.2; 0 < frac <= 1). Jitter prevents synchronized retry
	// storms from a fleet of clients hitting one recovering server.
	JitterFrac float64

	// HedgeAfter, when positive, launches an identical hedge request if
	// the primary has not answered within the delay; first response
	// wins, the loser is cancelled (default off).
	HedgeAfter time.Duration
	// MaxHedges bounds extra requests per attempt (default 1).
	MaxHedges int

	// Metrics receives relsyn_client_* series (default obs.Default).
	Metrics *obs.Registry

	// Sleep and Rand are injectable for deterministic tests.
	Sleep func(ctx context.Context, d time.Duration) error
	Rand  func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.JitterFrac <= 0 || c.JitterFrac > 1 {
		c.JitterFrac = 0.2
	}
	if c.MaxHedges <= 0 {
		c.MaxHedges = 1
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if c.Rand == nil {
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		c.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64()
		}
	}
	return c
}

// Client is a relsynd API client. Safe for concurrent use.
type Client struct {
	cfg     Config
	retries obs.Counter
	hedges  obs.Counter
	wins    obs.Counter
}

// New validates cfg and returns a client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	c := &Client{cfg: cfg}
	reg := cfg.Metrics
	reg.SetHelp("relsyn_client_retries_total", "Requests retried after a retryable failure (429/503/5xx/transport).")
	reg.SetHelp("relsyn_client_hedges_total", "Hedge requests launched against slow primaries.")
	reg.SetHelp("relsyn_client_hedge_wins_total", "Hedge requests that answered before the primary.")
	reg.RegisterCounter("relsyn_client_retries_total", &c.retries)
	reg.RegisterCounter("relsyn_client_hedges_total", &c.hedges)
	reg.RegisterCounter("relsyn_client_hedge_wins_total", &c.wins)
	return c, nil
}

// SynthRequest mirrors the POST /v1/synth body.
type synthRequest struct {
	PLA      string              `json:"pla"`
	Options  pipeline.JobOptions `json:"options"`
	Priority int                 `json:"priority,omitempty"`
	Wait     *bool               `json:"wait,omitempty"`
}

// Synth submits one job and waits for its result (server-side wait).
func (c *Client) Synth(ctx context.Context, plaText string, opts pipeline.JobOptions) (*Response, error) {
	return c.postJob(ctx, synthRequest{PLA: plaText, Options: opts})
}

// SynthAsync submits one job without waiting; poll the returned JobID
// with Job (or use Wait).
func (c *Client) SynthAsync(ctx context.Context, plaText string, opts pipeline.JobOptions) (*Response, error) {
	f := false
	return c.postJob(ctx, synthRequest{PLA: plaText, Options: opts, Wait: &f})
}

// Job polls one job by id.
func (c *Client) Job(ctx context.Context, id string) (*Response, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// Wait polls id until the job reaches a terminal state, backing off
// between polls with the client's backoff schedule (restarting the
// schedule on every successful poll).
func (c *Client) Wait(ctx context.Context, id string) (*Response, error) {
	for poll := 1; ; poll++ {
		resp, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.Terminal() {
			return resp, nil
		}
		if err := c.cfg.Sleep(ctx, c.backoff(min(poll, 6))); err != nil {
			return nil, err
		}
	}
}

func (c *Client) postJob(ctx context.Context, req synthRequest) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	return c.do(ctx, http.MethodPost, "/v1/synth", body)
}

// retryableStatus classifies responses worth retrying: backpressure,
// draining, and transient server errors.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// do runs one logical request through the retry (and hedging) policy.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		r := c.attempt(ctx, method, path, body)
		switch {
		case r.err == nil && !retryableStatus(r.code):
			if r.code >= 400 {
				msg := ""
				if r.resp != nil {
					msg = r.resp.Error
				}
				return r.resp, fmt.Errorf("client: %s %s: HTTP %d: %s", method, path, r.code, msg)
			}
			return r.resp, nil
		case r.err == nil:
			lastErr = fmt.Errorf("client: %s %s: HTTP %d", method, path, r.code)
		default:
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, r.err)
		}
		if attempt >= c.cfg.MaxAttempts || ctx.Err() != nil {
			return nil, fmt.Errorf("%w (after %d attempts)", lastErr, attempt)
		}
		delay := c.backoff(attempt)
		// Retry-After (seconds form) from a 429/503 overrides the
		// computed backoff, capped at MaxBackoff — the server knows its
		// own recovery horizon better than our schedule does.
		if r.retryAfter > 0 {
			delay = min(r.retryAfter, c.cfg.MaxBackoff)
		}
		c.retries.Inc()
		if err := c.cfg.Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
}

// backoff computes the k-th retry delay with jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	jitter := 1 + c.cfg.JitterFrac*(2*c.cfg.Rand()-1)
	return time.Duration(float64(d) * jitter)
}

// attemptResult carries one physical exchange's outcome, including any
// Retry-After hint parsed from a 429/503 response.
type attemptResult struct {
	resp       *Response
	code       int
	retryAfter time.Duration
	err        error
	hedged     bool
}

// attempt performs one (possibly hedged) physical exchange.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) attemptResult {
	if c.cfg.HedgeAfter <= 0 || method != http.MethodPost {
		return c.exchange(ctx, method, path, body, false)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the loser
	results := make(chan attemptResult, c.cfg.MaxHedges+1)
	launch := func(hedged bool) {
		go func() { results <- c.exchange(hctx, method, path, body, hedged) }()
	}
	launch(false)
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	launched, failures := 1, 0
	var firstFail attemptResult
	for {
		select {
		case r := <-results:
			if r.err == nil {
				if r.hedged {
					c.wins.Inc()
				}
				return r
			}
			failures++
			if failures == 1 {
				firstFail = r
			}
			if failures >= launched {
				if launched > c.cfg.MaxHedges {
					// Everything we may launch has failed; report the
					// first failure (the primary's, usually).
					return firstFail
				}
				// Primary failed fast: hedge immediately rather than
				// waiting out the timer.
				c.hedges.Inc()
				launch(true)
				launched++
			}
		case <-timer.C:
			if launched <= c.cfg.MaxHedges {
				c.hedges.Inc()
				launch(true)
				launched++
				timer.Reset(c.cfg.HedgeAfter)
			}
		case <-ctx.Done():
			return attemptResult{err: ctx.Err()}
		}
	}
}

// exchange performs one HTTP round trip and decodes the envelope.
func (c *Client) exchange(ctx context.Context, method, path string, body []byte, hedged bool) attemptResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return attemptResult{err: err, hedged: hedged}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	httpResp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return attemptResult{err: err, hedged: hedged}
	}
	defer httpResp.Body.Close()
	c.cfg.Metrics.Counter("relsyn_client_requests_total",
		obs.L("code", strconv.Itoa(httpResp.StatusCode))).Inc()
	var env Response
	if err := json.NewDecoder(io.LimitReader(httpResp.Body, 64<<20)).Decode(&env); err != nil {
		return attemptResult{err: fmt.Errorf("decode response (HTTP %d): %w", httpResp.StatusCode, err), hedged: hedged}
	}
	out := attemptResult{resp: &env, code: httpResp.StatusCode, hedged: hedged}
	if out.code == http.StatusTooManyRequests || out.code == http.StatusServiceUnavailable {
		if ra, err := strconv.Atoi(httpResp.Header.Get("Retry-After")); err == nil && ra > 0 {
			out.retryAfter = time.Duration(ra) * time.Second
		}
	}
	return out
}
