// Package client is the Go client for the relsynd synthesis service,
// with the reliability behaviors a fleet caller needs built in:
//
//   - Retries with capped exponential backoff and jitter on transport
//     errors, 429 (queue backpressure), 503 (draining), and other 5xx
//     responses. A 429's Retry-After header overrides the computed
//     backoff (capped at MaxBackoff) — the server's hint is
//     authoritative.
//   - Per-request hedging for tail latency: when HedgeAfter is set and
//     the primary request has not answered in time, an identical
//     request is raced against it and the first response wins. Hedging
//     is safe against relsynd by construction — requests are
//     content-addressed, so duplicates coalesce server-side onto one
//     execution instead of doubling work.
//
// Both behaviors assume idempotent submissions, which relsynd
// guarantees: identical (spec, options) pairs share one cache entry and
// one in-flight execution.
//
// The client exports relsyn_client_* metrics (requests by code,
// retries, hedges) on the configured obs registry.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
)

// Response is the relsynd job envelope (the wire shape of
// internal/server.SynthResponse).
type Response struct {
	JobID     string              `json:"job_id,omitempty"`
	Status    string              `json:"status"`
	Cached    bool                `json:"cached,omitempty"`
	Coalesced bool                `json:"coalesced,omitempty"`
	Result    *pipeline.JobResult `json:"result,omitempty"`
	Error     string              `json:"error,omitempty"`
}

// Terminal reports whether the envelope describes a finished job.
func (r *Response) Terminal() bool {
	switch r.Status {
	case "done", "failed", "expired":
		return true
	}
	return false
}

// Config configures New. The zero value of every field has a sensible
// default; only BaseURL is required.
type Config struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:8337".
	BaseURL string
	// HTTPClient overrides the transport (default: http.Client with a
	// 2-minute overall timeout; per-call deadlines come from ctx).
	HTTPClient *http.Client

	// MaxAttempts bounds tries per logical request, first attempt
	// included (default 4).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 100ms); attempt k
	// waits BaseBackoff·2^(k-1), capped at MaxBackoff (default 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac spreads each delay uniformly over ±frac·delay
	// (default 0.2; 0 < frac <= 1). Jitter prevents synchronized retry
	// storms from a fleet of clients hitting one recovering server.
	JitterFrac float64

	// HedgeAfter, when positive, launches an identical hedge request if
	// the primary has not answered within the delay; first response
	// wins, the loser is cancelled (default off).
	HedgeAfter time.Duration
	// MaxHedges bounds extra requests per attempt (default 1).
	MaxHedges int

	// Header holds extra headers applied to every request — e.g. the
	// cluster forwarding marker (internal/cluster.HeaderForwarded) that
	// relsyn-router and relsynd's peer-fill path stamp on forwarded
	// traffic. Per-call headers passed to Do override same-named keys.
	Header http.Header

	// Metrics receives relsyn_client_* series (default obs.Default).
	Metrics *obs.Registry

	// Sleep and Rand are injectable for deterministic tests.
	Sleep func(ctx context.Context, d time.Duration) error
	Rand  func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.JitterFrac <= 0 || c.JitterFrac > 1 {
		c.JitterFrac = 0.2
	}
	if c.MaxHedges <= 0 {
		c.MaxHedges = 1
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if c.Rand == nil {
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		c.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64()
		}
	}
	return c
}

// Client is a relsynd API client. Safe for concurrent use.
type Client struct {
	cfg     Config
	retries obs.Counter
	hedges  obs.Counter
	wins    obs.Counter
}

// New validates cfg and returns a client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	c := &Client{cfg: cfg}
	reg := cfg.Metrics
	reg.SetHelp("relsyn_client_retries_total", "Requests retried after a retryable failure (429/503/5xx/transport).")
	reg.SetHelp("relsyn_client_hedges_total", "Hedge requests launched against slow primaries.")
	reg.SetHelp("relsyn_client_hedge_wins_total", "Hedge requests that answered before the primary.")
	reg.RegisterCounter("relsyn_client_retries_total", &c.retries)
	reg.RegisterCounter("relsyn_client_hedges_total", &c.hedges)
	reg.RegisterCounter("relsyn_client_hedge_wins_total", &c.wins)
	return c, nil
}

// SynthRequest mirrors the POST /v1/synth body.
type synthRequest struct {
	PLA      string              `json:"pla"`
	Options  pipeline.JobOptions `json:"options"`
	Priority int                 `json:"priority,omitempty"`
	Wait     *bool               `json:"wait,omitempty"`
}

// BatchResponse is the relsynd batch envelope (the wire shape of
// internal/server.BatchResponse): one Response per submitted job, in
// request order.
type BatchResponse struct {
	Results []Response `json:"results"`
}

// BaseURL returns the configured service base URL (scheme included,
// trailing slash trimmed).
func (c *Client) BaseURL() string { return c.cfg.BaseURL }

// Synth submits one job and waits for its result (server-side wait).
func (c *Client) Synth(ctx context.Context, plaText string, opts pipeline.JobOptions) (*Response, error) {
	return c.postJob(ctx, synthRequest{PLA: plaText, Options: opts})
}

// SynthAsync submits one job without waiting; poll the returned JobID
// with Job (or use Wait).
func (c *Client) SynthAsync(ctx context.Context, plaText string, opts pipeline.JobOptions) (*Response, error) {
	f := false
	return c.postJob(ctx, synthRequest{PLA: plaText, Options: opts, Wait: &f})
}

// Job polls one job by id.
func (c *Client) Job(ctx context.Context, id string) (*Response, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// Wait polls id until the job reaches a terminal state, backing off
// between polls with the client's backoff schedule (restarting the
// schedule on every successful poll).
func (c *Client) Wait(ctx context.Context, id string) (*Response, error) {
	for poll := 1; ; poll++ {
		resp, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.Terminal() {
			return resp, nil
		}
		if err := c.cfg.Sleep(ctx, c.backoff(min(poll, 6))); err != nil {
			return nil, err
		}
	}
}

func (c *Client) postJob(ctx context.Context, req synthRequest) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	return c.do(ctx, http.MethodPost, "/v1/synth", body)
}

// retryableStatus classifies responses worth retrying: backpressure,
// draining, and transient server errors.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// do runs one logical request and decodes the single-job envelope,
// turning 4xx responses into errors (legacy convenience shape used by
// Synth/Job/Wait).
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*Response, error) {
	env, code, err := c.Do(ctx, method, path, body, nil)
	if err != nil {
		return env, err
	}
	if code >= 400 {
		return env, fmt.Errorf("client: %s %s: HTTP %d: %s", method, path, code, env.Error)
	}
	return env, nil
}

// Do runs one logical request through the retry (and hedging) policy
// and decodes the single-job envelope. Unlike Synth/Job it reports
// definitive 4xx responses with a nil error — the envelope and status
// code are the answer — which is what a forwarding router needs to pass
// a shard's verdict through verbatim. A non-nil error means there was
// no definitive response: transport failure or retryable statuses
// (429/5xx) through every attempt. hdr sets per-call headers on top of
// Config.Header.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, hdr http.Header) (*Response, int, error) {
	r, err := c.doRaw(ctx, method, path, body, hdr)
	if err != nil {
		return nil, 0, err
	}
	var env Response
	if derr := json.Unmarshal(r.body, &env); derr != nil {
		return nil, r.code, fmt.Errorf("client: %s %s: decode response (HTTP %d): %w", method, path, r.code, derr)
	}
	if r.code >= 400 && env.Status == "" {
		env.Status = "error"
	}
	return &env, r.code, nil
}

// DoBatch posts a pre-marshaled /v1/synth/batch body through the retry
// policy. Like Do, a definitive response — including a 4xx rejection —
// returns a nil error; the caller inspects the code. On 4xx the batch
// envelope is nil and the error body is returned as errEnv.
func (c *Client) DoBatch(ctx context.Context, body []byte, hdr http.Header) (batch *BatchResponse, errEnv *Response, code int, err error) {
	r, err := c.doRaw(ctx, http.MethodPost, "/v1/synth/batch", body, hdr)
	if err != nil {
		return nil, nil, 0, err
	}
	if r.code >= 400 {
		var env Response
		if derr := json.Unmarshal(r.body, &env); derr != nil {
			return nil, nil, r.code, fmt.Errorf("client: POST /v1/synth/batch: decode response (HTTP %d): %w", r.code, derr)
		}
		return nil, &env, r.code, nil
	}
	var br BatchResponse
	if derr := json.Unmarshal(r.body, &br); derr != nil {
		return nil, nil, r.code, fmt.Errorf("client: POST /v1/synth/batch: decode response (HTTP %d): %w", r.code, derr)
	}
	return &br, nil, r.code, nil
}

// FetchCache asks the shard's internal cache endpoint for a finished
// result by its full cache key (spec hash + "|" + options key). It is a
// single round trip with no retries: a fill is an optimization, and a
// miss must stay cheaper than the recompute it avoids. ok reports a
// hit; a 404 is (nil, false, nil).
func (c *Client) FetchCache(ctx context.Context, key string) (*pipeline.JobResult, bool, error) {
	r := c.exchange(ctx, http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil, nil, false)
	if r.err != nil {
		return nil, false, fmt.Errorf("client: GET /v1/cache: %w", r.err)
	}
	if r.code == http.StatusNotFound {
		return nil, false, nil
	}
	if r.code != http.StatusOK {
		return nil, false, fmt.Errorf("client: GET /v1/cache: HTTP %d", r.code)
	}
	var env Response
	if err := json.Unmarshal(r.body, &env); err != nil {
		return nil, false, fmt.Errorf("client: GET /v1/cache: decode response: %w", err)
	}
	if env.Result == nil {
		return nil, false, nil
	}
	return env.Result, true, nil
}

// FetchCensus asks the shard's census endpoint for a cached fused
// neighbor census by bare spec hash (no options key: census identity
// is options-independent). The payload is the internal/census binary
// wire format, returned opaque so the caller decides whether to decode
// and trust it. Like FetchCache it is a single best-effort round trip;
// a 404 is (nil, false, nil).
func (c *Client) FetchCensus(ctx context.Context, specHash string) ([]byte, bool, error) {
	r := c.exchange(ctx, http.MethodGet, "/v1/census/"+url.PathEscape(specHash), nil, nil, false)
	if r.err != nil {
		return nil, false, fmt.Errorf("client: GET /v1/census: %w", r.err)
	}
	if r.code == http.StatusNotFound {
		return nil, false, nil
	}
	if r.code != http.StatusOK {
		return nil, false, fmt.Errorf("client: GET /v1/census: HTTP %d", r.code)
	}
	if len(r.body) == 0 {
		return nil, false, nil
	}
	return r.body, true, nil
}

// doRaw runs one logical request through the retry (and hedging)
// policy, returning the first definitive exchange (any status outside
// the retryable set). The response body is fully read but not decoded.
func (c *Client) doRaw(ctx context.Context, method, path string, body []byte, hdr http.Header) (attemptResult, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		r := c.attempt(ctx, method, path, body, hdr)
		switch {
		case r.err == nil && !retryableStatus(r.code):
			return r, nil
		case r.err == nil:
			lastErr = fmt.Errorf("client: %s %s: HTTP %d", method, path, r.code)
		default:
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, r.err)
		}
		if attempt >= c.cfg.MaxAttempts || ctx.Err() != nil {
			return attemptResult{}, fmt.Errorf("%w (after %d attempts)", lastErr, attempt)
		}
		delay := c.backoff(attempt)
		// Retry-After (seconds form) from a 429/503 overrides the
		// computed backoff, capped at MaxBackoff — the server knows its
		// own recovery horizon better than our schedule does.
		if r.retryAfter > 0 {
			delay = min(r.retryAfter, c.cfg.MaxBackoff)
		}
		c.retries.Inc()
		if err := c.cfg.Sleep(ctx, delay); err != nil {
			return attemptResult{}, err
		}
	}
}

// backoff computes the k-th retry delay with jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	jitter := 1 + c.cfg.JitterFrac*(2*c.cfg.Rand()-1)
	return time.Duration(float64(d) * jitter)
}

// attemptResult carries one physical exchange's outcome — the status
// code and raw body of a completed round trip — including any
// Retry-After hint parsed from a 429/503 response.
type attemptResult struct {
	body       []byte
	code       int
	retryAfter time.Duration
	err        error
	hedged     bool
}

// attempt performs one (possibly hedged) physical exchange.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, hdr http.Header) attemptResult {
	if c.cfg.HedgeAfter <= 0 || method != http.MethodPost {
		return c.exchange(ctx, method, path, body, hdr, false)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the loser
	results := make(chan attemptResult, c.cfg.MaxHedges+1)
	launch := func(hedged bool) {
		go func() { results <- c.exchange(hctx, method, path, body, hdr, hedged) }()
	}
	launch(false)
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	launched, failures := 1, 0
	var firstFail attemptResult
	for {
		select {
		case r := <-results:
			if r.err == nil {
				if r.hedged {
					c.wins.Inc()
				}
				return r
			}
			failures++
			if failures == 1 {
				firstFail = r
			}
			if failures >= launched {
				if launched > c.cfg.MaxHedges {
					// Everything we may launch has failed; report the
					// first failure (the primary's, usually).
					return firstFail
				}
				// Primary failed fast: hedge immediately rather than
				// waiting out the timer.
				c.hedges.Inc()
				launch(true)
				launched++
			}
		case <-timer.C:
			if launched <= c.cfg.MaxHedges {
				c.hedges.Inc()
				launch(true)
				launched++
				timer.Reset(c.cfg.HedgeAfter)
			}
		case <-ctx.Done():
			return attemptResult{err: ctx.Err()}
		}
	}
}

// exchange performs one HTTP round trip and reads the full body. A
// body-read failure (e.g. the peer died mid-response) is a transport
// error and therefore retryable; decoding is the caller's concern.
func (c *Client) exchange(ctx context.Context, method, path string, body []byte, hdr http.Header, hedged bool) attemptResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return attemptResult{err: err, hedged: hedged}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range c.cfg.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	for k, vs := range hdr {
		req.Header[k] = vs // per-call headers override Config.Header
	}
	httpResp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return attemptResult{err: err, hedged: hedged}
	}
	defer httpResp.Body.Close()
	c.cfg.Metrics.Counter("relsyn_client_requests_total",
		obs.L("code", strconv.Itoa(httpResp.StatusCode))).Inc()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return attemptResult{err: fmt.Errorf("read response (HTTP %d): %w", httpResp.StatusCode, err), hedged: hedged}
	}
	out := attemptResult{body: raw, code: httpResp.StatusCode, hedged: hedged}
	if out.code == http.StatusTooManyRequests || out.code == http.StatusServiceUnavailable {
		if ra, err := strconv.Atoi(httpResp.Header.Get("Retry-After")); err == nil && ra > 0 {
			out.retryAfter = time.Duration(ra) * time.Second
		}
	}
	return out
}
